package harness

import (
	"fmt"
	"math/rand"
	"time"

	"hovercraft/internal/app"
	"hovercraft/internal/loadgen"
	"hovercraft/internal/r2p2"
	"hovercraft/internal/simcluster"
	"hovercraft/internal/stats"
)

// failoverWorkload emits globally unique replicated writes. Uniqueness
// is what makes the exactly-once audit possible: every acked payload can
// be located in the replicas' applied state and counted.
type failoverWorkload struct{ seq uint64 }

// Next implements loadgen.Workload.
func (w *failoverWorkload) Next(rng *rand.Rand) ([]byte, r2p2.Policy) {
	w.seq++
	return []byte(fmt.Sprintf("fo-%08d", w.seq)), r2p2.PolicyReplicated
}

// auditService counts how many times each unique op was applied, so the
// experiment can verify zero acked-but-lost and zero double-applied ops
// across the failover.
type auditService struct {
	applied map[string]int
	dups    uint64
}

// Execute implements app.Service.
func (s *auditService) Execute(p []byte, readOnly bool) []byte {
	if !readOnly {
		s.applied[string(p)]++
		if s.applied[string(p)] > 1 {
			s.dups++
		}
	}
	return []byte("acked!ok")
}

// failoverSpec is the WorkloadSpec for the failover experiment.
type failoverSpec struct{ wl *failoverWorkload }

// NewWorkload implements WorkloadSpec. All clients share the generator,
// keeping op IDs unique across the run (single-threaded simulation).
func (s failoverSpec) NewWorkload(bool) loadgen.Workload { return s.wl }

// NewService implements WorkloadSpec.
func (s failoverSpec) NewService() (app.Service, app.CostModel) {
	svc := &auditService{applied: make(map[string]int)}
	return svc, app.FixedCost{Service: svc, PerOp: time.Microsecond}
}

// Preload implements WorkloadSpec.
func (s failoverSpec) Preload() [][]byte { return nil }

// Describe implements WorkloadSpec.
func (s failoverSpec) Describe() string {
	return "unique replicated writes (1µs/op), per-op apply audit"
}

// Failover reproduces the paper's failure scenario (Fig. 12's setting)
// with the client retransmission path enabled and an exactly-once audit
// on top: kill the leader mid-load, measure the unavailability window
// and recovery time from a fine-grained throughput timeline, count
// client retransmissions and duplicate replies, and verify that every
// acked op is applied exactly once on every surviving replica.
func Failover(sc Scale) *Report {
	spec := failoverSpec{wl: &failoverWorkload{}}
	sys := HovercraftPP(3)
	sys.DisableReplyLB = false
	sys.Bound = 32
	sys.FlowLimit = 1000

	total := 10 * sc.Duration // 800ms full, 300ms quick
	killAt := 2 * total / 5
	const sample = 2 * time.Millisecond
	acked := make(map[string]bool)
	cfg := RunConfig{
		Seed: sc.Seed, Warmup: 0, Duration: total, Clients: 4,
		SampleEvery: sample,
		Retries:     8, RetryBackoff: time.Millisecond,
		OnComplete: func(p []byte) { acked[string(p)] = true },
		OnCluster: func(c *simcluster.Cluster) {
			c.Sim.After(killAt, func() {
				if lead := c.Leader(); lead != nil {
					lead.Crash()
				}
			})
		},
	}
	res, o := TracedPoint(sys, spec, 80_000, cfg)

	// Cluster-wide throughput/p99 timelines (same merge as Fig. 12, at a
	// finer grain so the election window is resolvable).
	tput := &stats.Series{Name: "throughput", YLegend: "kRPS"}
	p99 := &stats.Series{Name: "p99", YLegend: "ms"}
	nPoints := res.Clients[0].Throughput.Len()
	var times []time.Duration
	var sums []float64
	for i := 0; i < nPoints; i++ {
		var sum, worst float64
		var tm time.Duration
		for _, cl := range res.Clients {
			if i >= cl.Throughput.Len() {
				continue
			}
			t, v := cl.Throughput.At(i)
			tm = t
			sum += v
			_, l := cl.TailP99.At(i)
			if l > worst {
				worst = l
			}
		}
		tput.Add(tm, sum/1000)
		p99.Add(tm, worst)
		times = append(times, tm)
		sums = append(sums, sum/1000)
	}

	// Availability analysis: baseline is the mean pre-kill throughput
	// (skipping the ramp-up eighth); the unavailability window is the
	// post-kill span below 50% of baseline, recovery is the first return
	// to 90%.
	var baseline float64
	nBase := 0
	for i, tm := range times {
		if tm >= total/8 && tm < killAt {
			baseline += sums[i]
			nBase++
		}
	}
	if nBase > 0 {
		baseline /= float64(nBase)
	}
	unavail := time.Duration(0)
	recovery := time.Duration(-1)
	for i, tm := range times {
		if tm <= killAt {
			continue
		}
		if sums[i] < 0.5*baseline {
			unavail += sample
		}
		if recovery < 0 && sums[i] >= 0.9*baseline {
			recovery = tm - killAt
		}
	}

	// Exactly-once audit against every surviving replica.
	var live []*simcluster.Node
	for _, n := range res.Cluster.Nodes {
		if !n.Crashed() {
			live = append(live, n)
		}
	}
	ackedButLost, doubleApplied := 0, 0
	for _, n := range live {
		svc := n.Service.(*auditService)
		lost := 0
		for op := range acked {
			if svc.applied[op] == 0 {
				lost++
			}
		}
		if lost > ackedButLost {
			ackedButLost = lost
		}
		if int(svc.dups) > doubleApplied {
			doubleApplied = int(svc.dups)
		}
	}

	var retries, dups, expired, completed uint64
	rt := &stats.Table{
		Title:   "Client retry accounting",
		Headers: []string{"client", "completed", "retransmits", "dups_suppressed", "expired"},
	}
	for i, cl := range res.Clients {
		rt.AddRow(fmt.Sprintf("client%d", i),
			fmt.Sprintf("%d", cl.Completed),
			fmt.Sprintf("%d", cl.Retries),
			fmt.Sprintf("%d", cl.DupsSuppressed),
			fmt.Sprintf("%d", cl.Expired))
		retries += cl.Retries
		dups += cl.DupsSuppressed
		expired += cl.Expired
		completed += cl.Completed
	}
	rt.AddRow("total",
		fmt.Sprintf("%d", completed),
		fmt.Sprintf("%d", retries),
		fmt.Sprintf("%d", dups),
		fmt.Sprintf("%d", expired))

	rec := &stats.Table{
		Title:   "Failover recovery summary",
		Headers: []string{"metric", "value"},
	}
	recStr := "never (still degraded at end of run)"
	if recovery >= 0 {
		recStr = fmtDur(recovery)
	}
	rec.AddRow("leader killed at", fmtDur(killAt))
	rec.AddRow("baseline throughput", fmt.Sprintf("%.0f kRPS", baseline))
	rec.AddRow("unavailability window (<50% baseline)", fmtDur(unavail))
	rec.AddRow("recovery time (back to 90% baseline)", recStr)
	rec.AddRow("client retransmissions", fmt.Sprintf("%d", retries))
	rec.AddRow("duplicate replies suppressed", fmt.Sprintf("%d", dups))
	rec.AddRow("acked ops", fmt.Sprintf("%d", len(acked)))
	rec.AddRow("acked-but-lost (must be 0)", fmt.Sprintf("%d", ackedButLost))
	rec.AddRow("double-applied (must be 0)", fmt.Sprintf("%d", doubleApplied))

	rep := &Report{
		ID:    "failover",
		Title: "Leader failure with client retransmission and exactly-once audit",
		PaperClaim: "killing the leader causes a bounded unavailability window (one " +
			"election) after which a new leader re-proposes parked requests; with " +
			"retransmission and request-ID dedup no acked op is lost or applied twice",
		Series: []*stats.Series{tput, p99},
		Tables: []*stats.Table{
			rec, rt,
			o.BreakdownTable("Latency decomposition across the failure (full run)"),
			o.EventTable("Failure timeline: what happened when", 30, "raft", "node", "client"),
		},
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("workload: %s, 80 kRPS offered over %v, 4 clients, retry budget 8 @ 1ms backoff",
			spec.Describe(), total))
	if ackedButLost > 0 || doubleApplied > 0 {
		rep.Notes = append(rep.Notes, "EXACTLY-ONCE VIOLATION — see tables above")
	}
	if sc.TraceDir != "" {
		writeTraceArtifacts(rep, o, sc.TraceDir, "failover_leader_kill")
	}
	return rep
}
