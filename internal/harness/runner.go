// Package harness defines one reproducible experiment per table and
// figure of the HovercRaft paper's evaluation (§7) and the machinery to
// run them: cluster assembly, multi-client open-loop load, rate sweeps,
// and throughput-under-SLO extraction.
//
// Calibration follows the paper's testbed: 10GbE NICs, ≤10µs one-way
// hardware latency, 500µs p99 SLO, open-loop Poisson clients (Lancet).
// Absolute numbers depend on the simulator's constants; the experiment
// *shapes* (who wins, by what factor, where crossovers fall) are the
// reproduction targets recorded in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"math"
	"time"

	"hovercraft/internal/app"
	"hovercraft/internal/core"
	"hovercraft/internal/kvstore"
	"hovercraft/internal/loadgen"
	"hovercraft/internal/obs"
	"hovercraft/internal/r2p2"
	"hovercraft/internal/simcluster"
	"hovercraft/internal/simnet"
	"hovercraft/internal/stats"
	"hovercraft/internal/ycsb"
)

// SLO is the paper's service-level objective: 500µs at the 99th
// percentile.
const SLO = 500 * time.Microsecond

// SystemSpec names one of the four evaluated systems plus its knobs.
type SystemSpec struct {
	Label          string
	Setup          simcluster.Setup
	Nodes          int
	DisableReplyLB bool
	Policy         core.SelectPolicy
	Bound          int
	FlowLimit      int
	// ReadLease enables the leader-lease/read-index lin-read fast path
	// and points every client's LIN_READ traffic round-robin across the
	// cluster (followers serve reads locally once their applied index
	// passes a leader-confirmed read index).
	ReadLease bool
	// ReadStalenessBudget lets followers reuse a fetched read index for
	// this long before another leader round (amortizes one round across
	// many reads). Zero means every follower read fetches.
	ReadStalenessBudget time.Duration
}

// Unrep returns the unreplicated baseline spec.
func Unrep() SystemSpec {
	return SystemSpec{Label: "UnRep", Setup: simcluster.SetupUnreplicated, Nodes: 1}
}

// Vanilla returns the VanillaRaft spec on n nodes.
func Vanilla(n int) SystemSpec {
	return SystemSpec{Label: "VanillaRaft", Setup: simcluster.SetupVanilla, Nodes: n}
}

// Hovercraft returns the HovercRaft spec on n nodes. Reply load balancing
// is disabled to isolate protocol overheads, matching §7.1; enable it via
// the field for the load-balancing experiments.
func Hovercraft(n int) SystemSpec {
	return SystemSpec{Label: "HovercRaft", Setup: simcluster.SetupHovercraft,
		Nodes: n, DisableReplyLB: true}
}

// HovercraftPP returns the HovercRaft++ spec on n nodes (reply LB
// disabled as in §7.1; enable for §7.3+).
func HovercraftPP(n int) SystemSpec {
	return SystemSpec{Label: "HovercRaft++", Setup: simcluster.SetupHovercraftPP,
		Nodes: n, DisableReplyLB: true}
}

// WorkloadSpec builds per-run workload state: the client-side generator,
// the per-node service, and any preload dataset.
type WorkloadSpec interface {
	NewWorkload(unreplicated bool) loadgen.Workload
	NewService() (app.Service, app.CostModel)
	Preload() [][]byte
	Describe() string
}

// SyntheticSpec is the microbenchmark workload (§7.1–§7.4).
type SyntheticSpec struct {
	Service   loadgen.Dist
	ReqSize   int
	ReplySize int
	ReadFrac  float64
}

// NewWorkload implements WorkloadSpec.
func (s SyntheticSpec) NewWorkload(unrep bool) loadgen.Workload {
	return &loadgen.Synthetic{
		ServiceTime: s.Service, ReqSize: s.ReqSize, ReplySize: s.ReplySize,
		ReadFraction: s.ReadFrac, Unreplicated: unrep,
	}
}

// NewService implements WorkloadSpec.
func (s SyntheticSpec) NewService() (app.Service, app.CostModel) {
	svc := &app.SynthService{}
	return svc, svc
}

// Preload implements WorkloadSpec.
func (s SyntheticSpec) Preload() [][]byte { return nil }

// Describe implements WorkloadSpec.
func (s SyntheticSpec) Describe() string {
	return fmt.Sprintf("synthetic S=%v req=%dB reply=%dB ro=%.0f%%",
		s.Service.Mean(), s.ReqSize, s.ReplySize, 100*s.ReadFrac)
}

// YCSBESpec is the Redis/YCSB-E workload (§7.5).
type YCSBESpec struct {
	Records uint64
}

// NewWorkload implements WorkloadSpec. All clients share the generator
// (single-threaded simulation keeps it deterministic), so INSERT keys
// stay unique across clients.
func (y *YCSBESpec) NewWorkload(unrep bool) loadgen.Workload {
	return &loadgen.YCSBE{Gen: ycsb.NewWorkloadE(y.Records), Unreplicated: unrep}
}

// NewService implements WorkloadSpec.
func (y *YCSBESpec) NewService() (app.Service, app.CostModel) {
	s := kvstore.New()
	return s, s
}

// Preload implements WorkloadSpec.
func (y *YCSBESpec) Preload() [][]byte {
	ops := ycsb.NewWorkloadE(y.Records).LoadOps()
	payloads := make([][]byte, len(ops))
	for i, op := range ops {
		payloads[i] = op.Payload
	}
	return payloads
}

// Describe implements WorkloadSpec.
func (y *YCSBESpec) Describe() string {
	return fmt.Sprintf("YCSB-E 95%%SCAN/5%%INSERT %d records", y.Records)
}

// YCSBMixSpec is one of the YCSB read-heavy core mixes (§ readscale):
// B (95% read / 5% update), C (100% read), D (95% read / 5% insert,
// latest-skewed).
type YCSBMixSpec struct {
	Mix     string // "B", "C", or "D"
	Records uint64
	// LinReads tags reads LIN_READ so they take the leader-lease fast
	// path; otherwise reads are REPLICATED_REQ_R and order through the
	// log like every other request.
	LinReads bool
}

func (y *YCSBMixSpec) gen() *ycsb.Mix {
	switch y.Mix {
	case "B":
		return ycsb.NewWorkloadB(y.Records)
	case "D":
		return ycsb.NewWorkloadD(y.Records)
	default:
		return ycsb.NewWorkloadC(y.Records)
	}
}

// NewWorkload implements WorkloadSpec. As with YCSB-E, all clients
// share one generator so INSERT keys stay unique across clients.
func (y *YCSBMixSpec) NewWorkload(unrep bool) loadgen.Workload {
	return &loadgen.YCSBMix{Gen: y.gen(), LinReads: y.LinReads && !unrep}
}

// NewService implements WorkloadSpec.
func (y *YCSBMixSpec) NewService() (app.Service, app.CostModel) {
	s := kvstore.New()
	return s, s
}

// Preload implements WorkloadSpec.
func (y *YCSBMixSpec) Preload() [][]byte {
	ops := y.gen().LoadOps()
	payloads := make([][]byte, len(ops))
	for i, op := range ops {
		payloads[i] = op.Payload
	}
	return payloads
}

// Describe implements WorkloadSpec.
func (y *YCSBMixSpec) Describe() string {
	return fmt.Sprintf("YCSB-%s %d records (lin-reads=%v)", y.Mix, y.Records, y.LinReads)
}

// RunConfig sets measurement parameters.
type RunConfig struct {
	Seed     int64
	Warmup   time.Duration
	Duration time.Duration
	// Clients spreads offered load over several generator hosts so the
	// client side never bottlenecks.
	Clients int
	// ClientLinkBps upgrades client NICs for reply-heavy workloads.
	ClientLinkBps int64
	// SampleEvery enables time-series capture (Fig. 12).
	SampleEvery time.Duration
	// Retries/RetryBackoff configure client retransmission: a timed-out
	// request is re-sent under its original R2P2 ID up to Retries times
	// with exponential backoff, and the server-side dedup cache makes the
	// retried write apply exactly once. Zero Retries disables the path.
	Retries      int
	RetryBackoff time.Duration
	// OnComplete is installed on every client: called once per answered
	// request with its payload (failure experiments audit acked ops
	// against the replicas' final state).
	OnComplete func(payload []byte)
	// OnCluster runs right after Start (failure injection etc).
	OnCluster func(c *simcluster.Cluster)
	// Obs, if non-nil, traces the run: request lifecycle stamps across
	// cluster and clients, plus the structured cluster event log.
	Obs *obs.Obs
}

func (rc *RunConfig) defaults() {
	if rc.Warmup <= 0 {
		rc.Warmup = 20 * time.Millisecond
	}
	if rc.Duration <= 0 {
		rc.Duration = 80 * time.Millisecond
	}
	if rc.Clients <= 0 {
		rc.Clients = 4
	}
}

// Point is one measurement of a system at one offered load.
type Point struct {
	OfferedKRPS  float64
	AchievedKRPS float64
	P99          time.Duration
	P50          time.Duration
	NackKRPS     float64
	LossKRPS     float64
}

func (p Point) String() string {
	return fmt.Sprintf("offered=%.0fk achieved=%.0fk p50=%v p99=%v",
		p.OfferedKRPS, p.AchievedKRPS, p.P50, p.P99)
}

// Curve is a labeled latency-vs-throughput curve.
type Curve struct {
	Label  string
	Points []Point
}

// MaxUnderSLO returns the highest achieved kRPS whose p99 met the SLO
// while the system kept up with offered load (≥95%, saturation guard).
func (c Curve) MaxUnderSLO(slo time.Duration) float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.P99 <= slo && p.AchievedKRPS >= 0.95*p.OfferedKRPS && p.AchievedKRPS > best {
			best = p.AchievedKRPS
		}
	}
	return best
}

// RunResult bundles a point with the cluster it came from (counters etc).
type RunResult struct {
	Point   Point
	Cluster *simcluster.Cluster
	Clients []*loadgen.Client
	Hist    *stats.Histogram
}

// RunPoint builds a cluster, offers rate RPS for the configured window,
// and reports the merged measurement.
func RunPoint(sys SystemSpec, wl WorkloadSpec, rate float64, rc RunConfig) RunResult {
	rc.defaults()
	serverHost := simnet.DefaultHostConfig()
	// Consensus-message construction copies and encodes every entry
	// byte (~1.7 GB/s single-core); client replies are transmitted
	// zero-copy from application buffers. This is what makes
	// body-carrying replication expensive at the leader (Fig. 8/9)
	// while 6kB replies stay NIC-bound, not CPU-bound (Fig. 10).
	serverHost.ProcBytesPerSec = 1_670_000_000
	serverHost.ProcFilter = consensusPayload
	cl := simcluster.New(simcluster.Options{
		Setup: sys.Setup, Nodes: sys.Nodes, Seed: rc.Seed, Host: serverHost,
		Bound: sys.Bound, Policy: sys.Policy,
		DisableReplyLB:      sys.DisableReplyLB,
		FlowLimit:           sys.FlowLimit,
		ReadLease:           sys.ReadLease,
		ReadStalenessBudget: sys.ReadStalenessBudget,
		NewService:          wl.NewService,
		Preload:             wl.Preload(),
		Obs:                 rc.Obs,
	})
	unrep := sys.Setup == simcluster.SetupUnreplicated
	workload := wl.NewWorkload(unrep)
	clientCfg := simnet.DefaultHostConfig()
	if rc.ClientLinkBps > 0 {
		clientCfg.LinkBps = rc.ClientLinkBps
		clientCfg.EgressQueue *= 4
		clientCfg.IngressQueue *= 4
	}
	var readTargets []simnet.Addr
	if sys.ReadLease {
		readTargets = cl.NodeAddrs()
	}
	var clients []*loadgen.Client
	for i := 0; i < rc.Clients; i++ {
		c := loadgen.NewClient(cl.Net, fmt.Sprintf("client%d", i), clientCfg, loadgen.ClientConfig{
			Rate:   rate / float64(rc.Clients),
			Warmup: rc.Warmup, Duration: rc.Duration,
			Timeout:      20 * time.Millisecond,
			Retries:      rc.Retries,
			RetryBackoff: rc.RetryBackoff,
			OnComplete:   rc.OnComplete,
			Workload:     workload,
			Target:       cl.ServiceAddr,
			ReadTargets:  readTargets,
			Port:         uint16(1000 + i),
			SampleEvery: func() time.Duration {
				return rc.SampleEvery
			}(),
			Obs: rc.Obs,
		})
		clients = append(clients, c)
	}
	cl.Start()
	for _, c := range clients {
		c.Start()
	}
	if rc.OnCluster != nil {
		rc.OnCluster(cl)
	}
	cl.Run(rc.Warmup + rc.Duration + 40*time.Millisecond)

	hist := loadgen.MergeHistograms(clients)
	var offered, achieved, nacked, lost float64
	for _, c := range clients {
		r := c.Result()
		offered += r.Offered
		achieved += r.Achieved
		nacked += r.NackRate
		lost += r.LossRate
	}
	sum := hist.Summary()
	return RunResult{
		Point: Point{
			OfferedKRPS:  offered / 1000,
			AchievedKRPS: achieved / 1000,
			P99:          sum.P99,
			P50:          sum.P50,
			NackKRPS:     nacked / 1000,
			LossKRPS:     lost / 1000,
		},
		Cluster: cl,
		Clients: clients,
		Hist:    hist,
	}
}

// RunCurve sweeps offered rates and returns the resulting curve.
func RunCurve(sys SystemSpec, wl WorkloadSpec, rates []float64, rc RunConfig) Curve {
	c := Curve{Label: label(sys)}
	for _, r := range rates {
		res := RunPoint(sys, wl, r, rc)
		c.Points = append(c.Points, res.Point)
	}
	return c
}

// consensusPayload reports whether an encoded R2P2 datagram carries a
// consensus message (byte 2 of the header is the message type).
func consensusPayload(p []byte) bool {
	if len(p) < r2p2.HeaderSize {
		return false
	}
	t := r2p2.MessageType(p[2])
	return t == r2p2.TypeRaftReq || t == r2p2.TypeRaftResp
}

func label(sys SystemSpec) string {
	if sys.Nodes > 1 {
		return fmt.Sprintf("%s N=%d", sys.Label, sys.Nodes)
	}
	return sys.Label
}

// Linspace returns n evenly spaced rates in [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{hi}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// SweepRates spaces n rates from 30% of cap to cap, denser near cap —
// the interesting region of an open-loop latency/throughput curve is
// just below saturation, and a lone point exactly at ρ=1 would make
// max-under-SLO estimates collapse to the previous sparse point.
func SweepRates(cap float64, n int) []float64 {
	if n == 1 {
		return []float64{cap}
	}
	out := make([]float64, n)
	for i := range out {
		x := float64(i) / float64(n-1)
		out[i] = cap * (0.3 + 0.7*math.Pow(x, 0.6))
	}
	return out
}
