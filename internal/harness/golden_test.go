package harness

import (
	"bytes"
	"testing"
	"time"

	"hovercraft/internal/loadgen"
	"hovercraft/internal/obs"
)

// tracedRunArtifacts runs one traced point and serializes both export
// artifacts: the Chrome trace JSON and the metrics snapshot.
func tracedRunArtifacts(t *testing.T, seed int64) (trace, metrics []byte) {
	t.Helper()
	wl := SyntheticSpec{Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8}
	_, o := TracedPoint(Hovercraft(3), wl, 100_000, RunConfig{
		Seed: seed, Warmup: 2 * time.Millisecond, Duration: 10 * time.Millisecond, Clients: 2,
	})
	var tb, mb bytes.Buffer
	if err := o.WriteTrace(&tb); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := o.Metrics().WriteJSON(&mb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if o.Completed() == 0 {
		t.Fatal("traced run completed no requests")
	}
	return tb.Bytes(), mb.Bytes()
}

// TestTraceGoldenDeterminism is the observability determinism guarantee:
// two runs with the same seed must produce bit-for-bit identical trace
// and metrics artifacts. Any nondeterminism in the simulator, the stamp
// ordering, or the JSON rendering shows up here.
func TestTraceGoldenDeterminism(t *testing.T) {
	trace1, metrics1 := tracedRunArtifacts(t, 7)
	trace2, metrics2 := tracedRunArtifacts(t, 7)
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("trace output differs across same-seed runs (%d vs %d bytes)",
			len(trace1), len(trace2))
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Errorf("metrics output differs across same-seed runs:\n--- run1\n%s\n--- run2\n%s",
			metrics1, metrics2)
	}
	// Different seeds must actually change the run — otherwise the
	// equality above proves nothing.
	trace3, _ := tracedRunArtifacts(t, 8)
	if bytes.Equal(trace1, trace3) {
		t.Error("different seeds produced identical traces (clock not wired?)")
	}
}

// TestTracedPointDecomposition checks the end-to-end stamp wiring on a
// real cluster: every pipeline segment of a replicated run must see
// roughly as many samples as there are completed requests.
func TestTracedPointDecomposition(t *testing.T) {
	wl := SyntheticSpec{Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8}
	res, o := TracedPoint(Hovercraft(3), wl, 100_000, RunConfig{
		Seed: 3, Warmup: 2 * time.Millisecond, Duration: 10 * time.Millisecond, Clients: 2,
	})
	if res.Point.AchievedKRPS <= 0 {
		t.Fatalf("no throughput: %v", res.Point)
	}
	total := o.SegmentHist("total").Count()
	if total == 0 {
		t.Fatal("no completed spans")
	}
	for _, name := range obs.SegmentNames() {
		h := o.SegmentHist(name)
		if h.Count() < total*9/10 {
			t.Errorf("segment %s saw %d samples, total %d — stamps not wired", name, h.Count(), total)
		}
	}
	// The tracer measures client send → client receive; its view must
	// be consistent with the client-side latency histogram.
	traced := time.Duration(o.SegmentHist("total").P50())
	measured := res.Point.P50
	if traced < measured/2 || traced > measured*2 {
		t.Errorf("traced p50 %v far from measured p50 %v", traced, measured)
	}
}

// TestUnrepTracedDecomposition checks that the UnRep baseline reports
// zero ordering/replication cost but a meaningful total.
func TestUnrepTracedDecomposition(t *testing.T) {
	wl := SyntheticSpec{Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8}
	_, o := TracedPoint(Unrep(), wl, 100_000, RunConfig{
		Seed: 3, Warmup: 2 * time.Millisecond, Duration: 10 * time.Millisecond, Clients: 2,
	})
	if o.Completed() == 0 {
		t.Fatal("no completed spans")
	}
	for _, name := range []string{"order", "replicate"} {
		if got := o.SegmentHist(name).Max(); got != 0 {
			t.Errorf("UnRep %s max = %d, want 0", name, got)
		}
	}
	if o.SegmentHist("total").Max() == 0 {
		t.Error("UnRep total latency is zero")
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"HovercRaft++ N=3": "hovercraft_pp_n_3",
		"UnRep":            "unrep",
		"VanillaRaft N=5":  "vanillaraft_n_5",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}
