package harness

import (
	"testing"
)

// The readscale gates run in simulator virtual time, so they are
// bit-identical across machines: read_goodput_krps is the leased-read
// capacity under the 500µs SLO at N=3/G=1 on YCSB-C (floor),
// readscale_x is that capacity over the log-ordered-read baseline
// (floor — the whole point of the fast path), write_p99_us is the
// write-class tail while lin-reads flow around the log (ceiling, vs
// the overload baseline's admitted p99), and stale_reads gates the
// linearizability invariant at exactly zero. CI checks all four
// against BENCH_readscale.json (cmd/benchcheck).

// BenchmarkReadscaleYCSBC sweeps YCSB-C (100% point reads) on N=3:
// log-ordered reads, then the leased read-index path spread over all
// replicas. The gated claim: follower-served reads multiply capacity.
func BenchmarkReadscaleYCSBC(b *testing.B) {
	sc := QuickScale()
	cfg := sc.runCfg()
	for i := 0; i < b.N; i++ {
		base := readscaleCurve(Hovercraft(3), SweepRates(400_000, sc.Points), cfg, false)
		baseCap := base.MaxUnderSLO(SLO)
		lease := readscaleCurve(HovercraftLease(3), SweepRates(4.5*baseCap*1000, sc.Points), cfg, true)
		leaseCap := lease.MaxUnderSLO(SLO)
		b.ReportMetric(leaseCap, "read_goodput_krps")
		if baseCap > 0 {
			b.ReportMetric(leaseCap/baseCap, "readscale_x")
		}
	}
}

// BenchmarkReadscaleMixedB runs YCSB-B (95% lin-read / 5% update) on
// the leased N=3 cluster at a fixed rate: the write tail must hold
// while reads bypass the log, and no read may ever be served stale.
func BenchmarkReadscaleMixedB(b *testing.B) {
	cfg := QuickScale().runCfg()
	for i := 0; i < b.N; i++ {
		p := RunReadscalePoint(HovercraftLease(3),
			&YCSBMixSpec{Mix: "B", Records: readscaleRecords, LinReads: true}, 250_000, cfg)
		b.ReportMetric(float64(p.StaleServed), "stale_reads")
		b.ReportMetric(float64(p.WriteP99.Nanoseconds())/1e3, "write_p99_us")
		b.ReportMetric(p.ReadKRPS, "read_krps")
	}
}
