package harness

import (
	"fmt"
	"time"

	"hovercraft/internal/simcluster"
	"hovercraft/internal/stats"
)

// ReadStalenessBudget is the follower read-index refresh throttle the
// readscale experiment runs with: at most one leader round per budget
// window, shared by every read arriving within it. Reads stay strictly
// linearizable (each is served against an index captured after its
// arrival); the budget only bounds the extra queueing a read absorbs
// waiting for the next refresh.
const ReadStalenessBudget = 50 * time.Microsecond

// readscaleRecords keeps the kvstore small enough that point reads stay
// microsecond-scale but large enough that the Zipf head doesn't
// degenerate to one key.
const readscaleRecords = 2000

// HovercraftLease is the read scale-out system: HovercRaft with the
// leader-lease/read-index fast path on, clients spreading LIN_READs
// round-robin across all n replicas.
func HovercraftLease(n int) SystemSpec {
	s := Hovercraft(n)
	s.Label = "HovercRaft+lease"
	s.ReadLease = true
	s.ReadStalenessBudget = ReadStalenessBudget
	return s
}

// readCounter sums one read-path counter across every cluster node.
func readCounter(cl *simcluster.Cluster, name string) uint64 {
	var sum uint64
	for _, n := range cl.Nodes {
		sum += n.Engine.Counters().Value(name)
	}
	return sum
}

// ReadscalePoint is one readscale measurement: the usual point plus the
// read/write class split and the cluster-side read-path counters.
type ReadscalePoint struct {
	Point          Point
	ReadKRPS       float64 // read-class goodput
	WriteP99       time.Duration
	ReadP99        time.Duration
	LeaderServed   uint64
	FollowerServed uint64
	Amortized      uint64 // follower reads that shared a leader round
	Nacked         uint64
	StaleServed    uint64 // invariant: must be 0
	Redirects      uint64 // client-side NACK→next-replica retries
}

// RunReadscalePoint measures one system at one offered load and breaks
// the result down by request class.
func RunReadscalePoint(sys SystemSpec, wl WorkloadSpec, rate float64, rc RunConfig) ReadscalePoint {
	res := RunPoint(sys, wl, rate, rc)
	var reads, redirects uint64
	for _, c := range res.Clients {
		reads += c.CompletedReads
		redirects += c.ReadRedirects
	}
	d := rc.Duration
	if d <= 0 {
		d = 80 * time.Millisecond // RunConfig default
	}
	return ReadscalePoint{
		Point:          res.Point,
		ReadKRPS:       float64(reads) / d.Seconds() / 1000,
		WriteP99:       loadgenWriteP99(res),
		ReadP99:        loadgenReadP99(res),
		LeaderServed:   readCounter(res.Cluster, "read_leader_served"),
		FollowerServed: readCounter(res.Cluster, "read_follower_served"),
		Amortized:      readCounter(res.Cluster, "read_amortized"),
		Nacked:         readCounter(res.Cluster, "read_nacked"),
		StaleServed:    readCounter(res.Cluster, "read_stale_served"),
		Redirects:      redirects,
	}
}

func loadgenWriteP99(res RunResult) time.Duration {
	h := stats.NewHistogram()
	for _, c := range res.Clients {
		h.Merge(c.WriteLatency)
	}
	return h.Summary().P99
}

func loadgenReadP99(res RunResult) time.Duration {
	h := stats.NewHistogram()
	for _, c := range res.Clients {
		h.Merge(c.ReadLatency)
	}
	return h.Summary().P99
}

// readscaleCurve sweeps one system over rates on YCSB-C and returns the
// curve (read goodput == achieved goodput: the mix is 100% reads).
func readscaleCurve(sys SystemSpec, rates []float64, rc RunConfig, linReads bool) Curve {
	wl := &YCSBMixSpec{Mix: "C", Records: readscaleRecords, LinReads: linReads}
	c := Curve{Label: label(sys)}
	for _, r := range rates {
		res := RunPoint(sys, wl, r, rc)
		c.Points = append(c.Points, res.Point)
	}
	return c
}

// Readscale is the linearizable read scale-out experiment: YCSB-C
// (100% point reads) against N=4 HovercRaft, leader-only log-ordered
// reads vs the leader-lease/read-index fast path with follower-served
// reads. The lease path should scale read goodput toward (N-1)x the
// log path — every replica serves reads from local state after one
// (amortized) read-index round — while YCSB-B shows replicated writes
// keeping their 500µs p99 SLO alongside the read traffic, and the
// stale-read counter stays zero.
func Readscale(sc Scale) *Report {
	const n = 4
	cfg := sc.runCfg()

	rep := &Report{
		ID:    "readscale",
		Title: fmt.Sprintf("Linearizable read scale-out: leased read-index, YCSB-C, N=%d", n),
		PaperClaim: "log-ordered reads bottleneck on the leader's replication path; " +
			"a leader-leased read index lets every replica serve linearizable reads " +
			"locally, scaling read goodput with cluster size while writes keep the " +
			"500µs p99 SLO and no stale read is ever served",
	}

	// Baseline: reads ordered through the log (REPLICATED_REQ_R), leader
	// executes and replies. Sweep to find its capacity under SLO.
	base := readscaleCurve(Hovercraft(n), SweepRates(400_000, sc.Points), cfg, false)
	baseCap := base.MaxUnderSLO(SLO)

	// Treatment: leased read index, reads spread over all N replicas.
	leaseRates := SweepRates(4.5*baseCap*1000, sc.Points)
	if baseCap == 0 {
		leaseRates = SweepRates(1_200_000, sc.Points)
	}
	lease := readscaleCurve(HovercraftLease(n), leaseRates, cfg, true)
	leaseCap := lease.MaxUnderSLO(SLO)

	rep.Curves = append(rep.Curves, base, lease)
	rep.Tables = append(rep.Tables,
		CurveTable("YCSB-C read goodput sweep", []Curve{base, lease}),
		SLOTable("Readscale", []Curve{base, lease}, SLO))
	ratio := 0.0
	if baseCap > 0 {
		ratio = leaseCap / baseCap
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"read goodput under SLO: log-ordered %.0f kRPS, leased read-index %.0f kRPS — %.2fx (target ≥2.5x at N=%d)",
		baseCap, leaseCap, ratio, n))

	// Read-path anatomy at ~80%% of lease capacity: who served the reads,
	// how often the staleness cache absorbed the leader round, and the
	// stale-read invariant.
	probeRate := 0.8 * leaseCap * 1000
	if probeRate <= 0 {
		probeRate = 200_000
	}
	anatomy := RunReadscalePoint(HovercraftLease(n),
		&YCSBMixSpec{Mix: "C", Records: readscaleRecords, LinReads: true}, probeRate, cfg)
	served := anatomy.LeaderServed + anatomy.FollowerServed
	frac := 0.0
	if served > 0 {
		frac = float64(anatomy.FollowerServed) / float64(served)
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Read-path anatomy at %.0f kRPS (YCSB-C, leased)", probeRate/1000),
		Headers: []string{"read k/s", "read p99", "leader", "follower", "follower frac",
			"amortized", "nacked", "redirects", "stale"},
	}
	t.AddRow(fmt.Sprintf("%.0f", anatomy.ReadKRPS), anatomy.ReadP99.String(),
		fmt.Sprintf("%d", anatomy.LeaderServed), fmt.Sprintf("%d", anatomy.FollowerServed),
		fmt.Sprintf("%.0f%%", 100*frac),
		fmt.Sprintf("%d", anatomy.Amortized), fmt.Sprintf("%d", anatomy.Nacked),
		fmt.Sprintf("%d", anatomy.Redirects), fmt.Sprintf("%d", anatomy.StaleServed))
	rep.Tables = append(rep.Tables, t)
	if anatomy.StaleServed != 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"INVARIANT VIOLATION: read_stale_served=%d (must be 0)", anatomy.StaleServed))
	}

	// Mixed mixes: B (5%% writes) and D (5%% inserts, latest-skewed reads)
	// at a moderate rate — the write tail must stay inside the SLO while
	// lin-reads flow around the log.
	mixT := &stats.Table{
		Title: "Read-heavy mixes with leased reads (write tail must hold the SLO)",
		Headers: []string{"mix", "offered k", "goodput k", "read k/s", "read p99",
			"write p99", "follower frac", "stale"},
	}
	mixRate := 0.5 * leaseCap * 1000
	if mixRate <= 0 {
		mixRate = 150_000
	}
	for _, mix := range []string{"B", "D"} {
		p := RunReadscalePoint(HovercraftLease(n),
			&YCSBMixSpec{Mix: mix, Records: readscaleRecords, LinReads: true}, mixRate, cfg)
		served := p.LeaderServed + p.FollowerServed
		frac := 0.0
		if served > 0 {
			frac = float64(p.FollowerServed) / float64(served)
		}
		mixT.AddRow("YCSB-"+mix,
			fmt.Sprintf("%.0f", p.Point.OfferedKRPS),
			fmt.Sprintf("%.0f", p.Point.AchievedKRPS),
			fmt.Sprintf("%.0f", p.ReadKRPS), p.ReadP99.String(), p.WriteP99.String(),
			fmt.Sprintf("%.0f%%", 100*frac), fmt.Sprintf("%d", p.StaleServed))
		if p.StaleServed != 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"INVARIANT VIOLATION: YCSB-%s read_stale_served=%d (must be 0)", mix, p.StaleServed))
		}
	}
	rep.Tables = append(rep.Tables, mixT)
	return rep
}
