package harness

import (
	"fmt"
	"time"

	"hovercraft/internal/core"
	"hovercraft/internal/loadgen"
	"hovercraft/internal/simcluster"
	"hovercraft/internal/stats"
)

// Scale trades fidelity for runtime: Full regenerates the paper figures,
// Quick keeps CI and `go test -bench` fast.
type Scale struct {
	Warmup   time.Duration
	Duration time.Duration
	Points   int // sweep points per curve
	Seed     int64
	// TraceDir, when set, makes experiments attach a tracer to one
	// representative run per system and drop Perfetto-loadable
	// *.trace.json plus *.metrics.json artifacts into the directory.
	TraceDir string
	// ShardGroups overrides the group counts the shardscale experiment
	// sweeps (empty = {1, 2, 4, 8}).
	ShardGroups []int
}

// FullScale is the figure-quality configuration.
func FullScale() Scale {
	return Scale{Warmup: 20 * time.Millisecond, Duration: 80 * time.Millisecond, Points: 7, Seed: 42}
}

// QuickScale is the CI configuration.
func QuickScale() Scale {
	return Scale{Warmup: 10 * time.Millisecond, Duration: 30 * time.Millisecond, Points: 4, Seed: 42}
}

func (s Scale) runCfg() RunConfig {
	return RunConfig{Seed: s.Seed, Warmup: s.Warmup, Duration: s.Duration, Clients: 4}
}

// baselineWorkload is the §7.1 microbenchmark: S=1µs fixed, 24B requests,
// 8B replies, no read-only operations.
func baselineWorkload() SyntheticSpec {
	return SyntheticSpec{Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8}
}

// Experiments lists every reproduction in paper order.
func Experiments() []string {
	return []string{"table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "shardscale", "failover", "overload", "readscale"}
}

// Run dispatches an experiment by ID.
func Run(id string, sc Scale) (*Report, error) {
	switch id {
	case "table1":
		return Table1(sc), nil
	case "fig7":
		return Fig7(sc), nil
	case "fig8":
		return Fig8(sc), nil
	case "fig9":
		return Fig9(sc), nil
	case "fig10":
		return Fig10(sc), nil
	case "fig11":
		return Fig11(sc), nil
	case "fig12":
		return Fig12(sc), nil
	case "fig13":
		return Fig13(sc), nil
	case "shardscale":
		return Shardscale(sc), nil
	case "failover":
		return Failover(sc), nil
	case "overload":
		return Overload(sc), nil
	case "readscale":
		return Readscale(sc), nil
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
	}
}

// --- Table 1 ---------------------------------------------------------------

// Table1 measures the leader's per-request Rx/Tx message counts for the
// three replicated systems on N=5 and compares them with the paper's
// analytic complexity (Raft: rx 1+(N-1), tx (N-1)+1; HovercRaft: rx
// 1+(N-1), tx (N-1)+1/N; HovercRaft++: rx 1+1, tx 1+1/N).
func Table1(sc Scale) *Report {
	const n = 5
	wl := baselineWorkload()
	rate := 200_000.0

	t := &stats.Table{
		Title: "Leader message complexity per request (N=5, 200 kRPS)",
		Headers: []string{"system", "rx/req(paper)", "rx/req(measured)",
			"tx/req(paper)", "tx/req(measured)"},
	}
	type row struct {
		sys          SystemSpec
		paperRx      string
		paperTx      string
		enableLB     bool
		useAggregate bool
	}
	rows := []row{
		{Vanilla(n), "1+(N-1)=5", "(N-1)+1=5", false, false},
		{func() SystemSpec { s := Hovercraft(n); s.DisableReplyLB = false; return s }(),
			"1+(N-1)=5", "(N-1)+1/N=4.2", true, false},
		{func() SystemSpec { s := HovercraftPP(n); s.DisableReplyLB = false; return s }(),
			"1+1=2", "1+1/N=1.2", true, true},
	}
	rep := &Report{
		ID:    "table1",
		Title: "Rx/Tx message overheads at the leader",
		PaperClaim: "Raft leader handles Θ(N) messages per request; HovercRaft " +
			"shrinks Tx via reply LB; HovercRaft++ makes both ends ~constant",
		Tables: []*stats.Table{t},
	}
	for _, r := range rows {
		res := RunPoint(r.sys, wl, rate, sc.runCfg())
		lead := res.Cluster.Leader()
		if lead == nil {
			continue
		}
		c := lead.Engine.Counters()
		reqs := float64(c.Value("rx_req"))
		if reqs == 0 {
			continue
		}
		rx := float64(c.Value("rx_req")+c.Value("rx_ae_resp")+
			c.Value("rx_agg_commit")+c.Value("rx_recovery_req")) / reqs
		tx := float64(c.Value("tx_ae")+c.Value("tx_agg_ae")+c.Value("tx_resp")+
			c.Value("tx_feedback")+c.Value("tx_recovery_resp")) / reqs
		t.AddRow(r.sys.Label, r.paperRx, fmt.Sprintf("%.2f", rx),
			r.paperTx, fmt.Sprintf("%.2f", tx))
	}
	rep.Notes = append(rep.Notes,
		"measured counts are below the per-request analytic formulas because the "+
			"implementation batches AppendEntries on a 10µs interval (the paper's "+
			"DPDK poll loop batches similarly under load); the shape to check is the "+
			"Θ(N) vs Θ(1) scaling across systems")
	return rep
}

// --- Fig. 7 ----------------------------------------------------------------

// Fig7 is the §7.1 baseline: latency vs throughput on N=3 for all four
// setups, S=1µs, 24B/8B, reply LB disabled.
func Fig7(sc Scale) *Report {
	wl := baselineWorkload()
	rates := SweepRates(1_000_000, sc.Points)
	systems := []SystemSpec{Unrep(), Vanilla(3), Hovercraft(3), HovercraftPP(3)}
	var curves []Curve
	for _, sys := range systems {
		curves = append(curves, RunCurve(sys, wl, rates, sc.runCfg()))
	}
	rep := fig7Report(curves)
	if sc.TraceDir != "" {
		// One traced run per system at the lightest sweep load: the
		// per-stage decomposition shows where the replication latency
		// offset lives, and the trace files open in Perfetto.
		for _, sys := range systems {
			_, o := TracedPoint(sys, wl, rates[0], sc.runCfg())
			rep.Tables = append(rep.Tables, o.BreakdownTable(fmt.Sprintf(
				"Latency decomposition: %s at %.0f kRPS", label(sys), rates[0]/1000)))
			writeTraceArtifacts(rep, o, sc.TraceDir, "fig7_"+slug(label(sys)))
		}
	}
	return rep
}

func fig7Report(curves []Curve) *Report {
	rep := &Report{
		ID:    "fig7",
		Title: "Tail latency vs throughput, S=1µs, 24B req / 8B reply, N=3",
		PaperClaim: "all four setups reach ≈1M RPS under the 500µs SLO; the " +
			"replicated configurations add a small latency offset (≤68µs) over UnRep",
		Curves: curves,
		Tables: []*stats.Table{
			CurveTable("Fig. 7 data", curves),
			SLOTable("Fig. 7", curves, SLO),
		},
	}
	// Report the replication latency offset at the lowest common load.
	if len(curves) == 4 && len(curves[0].Points) > 0 {
		base := curves[0].Points[0].P99
		worst := time.Duration(0)
		for _, c := range curves[1:] {
			if d := c.Points[0].P99 - base; d > worst {
				worst = d
			}
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"replication p99 offset at %.0f kRPS: %v (paper: ≤68µs)",
			curves[0].Points[0].OfferedKRPS, worst))
	}
	return rep
}

// --- Fig. 8 ----------------------------------------------------------------

// Fig8 varies the request size (24/64/512B): VanillaRaft degrades with
// request size because it ships bodies through the leader; HovercRaft and
// HovercRaft++ are size-insensitive thanks to multicast replication.
func Fig8(sc Scale) *Report {
	sizes := []int{24, 64, 512}
	systems := []SystemSpec{Unrep(), Vanilla(3), Hovercraft(3), HovercraftPP(3)}
	t := &stats.Table{
		Title:   "Max kRPS under 500µs SLO vs request size (N=3, S=1µs)",
		Headers: []string{"system", "24B", "64B", "512B", "512B vs 24B"},
	}
	rep := &Report{
		ID:    "fig8",
		Title: "Throughput under SLO vs request size",
		PaperClaim: "VanillaRaft loses 2% at 64B and 48% at 512B; HovercRaft and " +
			"HovercRaft++ are unaffected by request size",
		Tables: []*stats.Table{t},
	}
	rates := SweepRates(1_000_000, sc.Points)
	for _, sys := range systems {
		var maxes []float64
		for _, size := range sizes {
			wl := baselineWorkload()
			wl.ReqSize = size
			curve := RunCurve(sys, wl, rates, sc.runCfg())
			maxes = append(maxes, curve.MaxUnderSLO(SLO))
		}
		delta := "n/a"
		if maxes[0] > 0 {
			delta = fmt.Sprintf("%+.0f%%", 100*(maxes[2]-maxes[0])/maxes[0])
		}
		t.AddRow(sys.Label,
			fmt.Sprintf("%.0f", maxes[0]), fmt.Sprintf("%.0f", maxes[1]),
			fmt.Sprintf("%.0f", maxes[2]), delta)
	}
	return rep
}

// --- Fig. 9 ----------------------------------------------------------------

// Fig9 scales the cluster (3/5/7/9 nodes) on the baseline workload.
func Fig9(sc Scale) *Report {
	clusterSizes := []int{3, 5, 7, 9}
	t := &stats.Table{
		Title:   "Max kRPS under 500µs SLO vs cluster size (S=1µs, 24B/8B)",
		Headers: []string{"system", "N=3", "N=5", "N=7", "N=9", "N=9 vs N=3"},
	}
	rep := &Report{
		ID:    "fig9",
		Title: "Throughput under SLO vs cluster size",
		PaperClaim: "VanillaRaft degrades most (−43% at N=9); HovercRaft holds to " +
			"N=5 then dips; HovercRaft++ is flat — in-network aggregation makes " +
			"leader cost independent of N",
		Tables: []*stats.Table{t},
	}
	rates := SweepRates(1_000_000, sc.Points)
	wl := baselineWorkload()
	for _, mk := range []func(int) SystemSpec{Vanilla, Hovercraft, HovercraftPP} {
		var maxes []float64
		for _, n := range clusterSizes {
			curve := RunCurve(mk(n), wl, rates, sc.runCfg())
			maxes = append(maxes, curve.MaxUnderSLO(SLO))
		}
		delta := "n/a"
		if maxes[0] > 0 {
			delta = fmt.Sprintf("%+.0f%%", 100*(maxes[3]-maxes[0])/maxes[0])
		}
		t.AddRow(mk(3).Label,
			fmt.Sprintf("%.0f", maxes[0]), fmt.Sprintf("%.0f", maxes[1]),
			fmt.Sprintf("%.0f", maxes[2]), fmt.Sprintf("%.0f", maxes[3]), delta)
	}
	return rep
}

// --- Fig. 10 ---------------------------------------------------------------

// Fig10 turns reply load balancing on with 6kB replies: the unreplicated
// server is I/O-bound at ≈200 kRPS (one 10G link); N=3/N=5 HovercRaft++
// multiply reply bandwidth by the cluster size.
func Fig10(sc Scale) *Report {
	wl := SyntheticSpec{Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 6 * 1024}
	mk := func(n int) SystemSpec {
		s := HovercraftPP(n)
		s.DisableReplyLB = false
		s.Bound = 128
		return s
	}
	cfg := sc.runCfg()
	cfg.Clients = 8
	cfg.ClientLinkBps = 40_000_000_000 // Lancet boxes must not bottleneck
	var curves []Curve
	curves = append(curves, RunCurve(Unrep(), wl, Linspace(50_000, 260_000, sc.Points), cfg))
	curves = append(curves, RunCurve(mk(3), wl, Linspace(100_000, 700_000, sc.Points), cfg))
	curves = append(curves, RunCurve(mk(5), wl, Linspace(100_000, 1_100_000, sc.Points), cfg))
	return &Report{
		ID:    "fig10",
		Title: "Reply load balancing under 6kB replies (S=1µs, B=128)",
		PaperClaim: "UnRep is NIC-bound at ≈200 kRPS; replication *increases* " +
			"capacity ≈3× on 3 nodes and ≈5× on 5 nodes because all replicas reply",
		Curves: curves,
		Tables: []*stats.Table{
			CurveTable("Fig. 10 data", curves),
			SLOTable("Fig. 10", curves, SLO),
		},
	}
}

// --- Fig. 11 ---------------------------------------------------------------

// Fig11 studies CPU load balancing of read-only requests under service
// time dispersion: S̄=10µs bimodal (10% of requests 10× longer), 75%
// read-only, B=32, JBSQ vs RANDOM on HovercRaft++ N=3.
func Fig11(sc Scale) *Report {
	wl := SyntheticSpec{
		Service: loadgen.PaperBimodal(10 * time.Microsecond),
		ReqSize: 24, ReplySize: 8,
		ReadFrac: 0.75,
	}
	mk := func(policy core.SelectPolicy, label string) SystemSpec {
		s := HovercraftPP(3)
		s.DisableReplyLB = false
		s.Bound = 32
		s.Policy = policy
		s.Label = label
		return s
	}
	var curves []Curve
	curves = append(curves, RunCurve(Unrep(), wl, Linspace(30_000, 110_000, sc.Points), sc.runCfg()))
	curves = append(curves, RunCurve(mk(core.PolicyRandom, "HovercRaft++ RAND"), wl,
		Linspace(50_000, 200_000, sc.Points), sc.runCfg()))
	curves = append(curves, RunCurve(mk(core.PolicyJBSQ, "HovercRaft++ JBSQ"), wl,
		Linspace(50_000, 200_000, sc.Points), sc.runCfg()))
	return &Report{
		ID:    "fig11",
		Title: "Read-only load balancing, bimodal S̄=10µs, 75% RO, B=32, N=3",
		PaperClaim: "load balancing read-only work raises capacity ≈57% over UnRep " +
			"under SLO; JBSQ beats RANDOM at the tail by avoiding busy followers",
		Curves: curves,
		Tables: []*stats.Table{
			CurveTable("Fig. 11 data", curves),
			SLOTable("Fig. 11", curves, SLO),
		},
	}
}

// --- Fig. 12 ---------------------------------------------------------------

// Fig12 kills the leader under fixed load (same workload as Fig. 11,
// fixed 165 kRPS offered, flow-control window 1000) and records the
// throughput and p99 timelines: brief election blip, graceful degradation
// to 2-node capacity, flow control sheds the excess, no collapse.
func Fig12(sc Scale) *Report {
	wl := SyntheticSpec{
		Service: loadgen.PaperBimodal(10 * time.Microsecond),
		ReqSize: 24, ReplySize: 8,
		ReadFrac: 0.75,
	}
	sys := HovercraftPP(3)
	sys.DisableReplyLB = false
	sys.Bound = 32
	sys.FlowLimit = 1000

	total := 1500 * time.Millisecond
	killAt := 600 * time.Millisecond
	cfg := RunConfig{
		Seed: sc.Seed, Warmup: 0, Duration: total, Clients: 4,
		SampleEvery: 25 * time.Millisecond,
		OnCluster: func(c *simcluster.Cluster) {
			c.Sim.After(killAt, func() {
				if lead := c.Leader(); lead != nil {
					lead.Crash()
				}
			})
		},
	}
	res, o := TracedPoint(sys, wl, 165_000, cfg)

	// Merge per-client series into cluster-wide throughput and worst p99.
	tput := &stats.Series{Name: "throughput", YLegend: "kRPS"}
	p99 := &stats.Series{Name: "p99", YLegend: "ms"}
	nPoints := res.Clients[0].Throughput.Len()
	for i := 0; i < nPoints; i++ {
		var sum float64
		var worst float64
		var tm time.Duration
		for _, cl := range res.Clients {
			if i >= cl.Throughput.Len() {
				continue
			}
			t, v := cl.Throughput.At(i)
			tm = t
			sum += v
			_, l := cl.TailP99.At(i)
			if l > worst {
				worst = l
			}
		}
		tput.Add(tm, sum/1000)
		p99.Add(tm, worst)
	}
	rep := &Report{
		ID:    "fig12",
		Title: "Leader failure under 165 kRPS fixed load (flow-control limit 1000)",
		PaperClaim: "after the leader dies throughput drops from 165k to the 2-node " +
			"capacity (≈160k) with ≈5 kRPS shed by flow control; latency spikes " +
			"briefly during the election but the system does not collapse",
		Series: []*stats.Series{tput, p99},
		Tables: []*stats.Table{
			o.BreakdownTable("Latency decomposition across the failure (full run)"),
			o.EventTable("Failure timeline: what happened when", 30, "raft", "node", "flow"),
		},
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("leader killed at t=%v; post-failure achieved %.0f kRPS, NACKed %.1f kRPS, lost %.1f kRPS",
			killAt, res.Point.AchievedKRPS, res.Point.NackKRPS, res.Point.LossKRPS))
	if sc.TraceDir != "" {
		writeTraceArtifacts(rep, o, sc.TraceDir, "fig12_leader_failure")
	}
	return rep
}

// --- Fig. 13 ---------------------------------------------------------------

// Fig13 runs YCSB-E against the Redis-like store: UnRep vs HovercRaft++
// on 3/5/7 nodes. SCANs (95%) are read-only and load balanced; INSERTs
// (5%) run everywhere — Amdahl caps the speedup near the paper's 4×.
func Fig13(sc Scale) *Report {
	wl := &YCSBESpec{Records: 2000}
	mk := func(n int) SystemSpec {
		s := HovercraftPP(n)
		s.DisableReplyLB = false
		s.Bound = 64
		return s
	}
	cfg := sc.runCfg()
	cfg.Clients = 6
	cfg.ClientLinkBps = 40_000_000_000
	var curves []Curve
	curves = append(curves, RunCurve(Unrep(), wl, Linspace(10_000, 50_000, sc.Points), cfg))
	for _, n := range []int{3, 5, 7} {
		hi := 45_000.0 * float64(n)
		curves = append(curves, RunCurve(mk(n), wl, Linspace(20_000, hi, sc.Points), cfg))
	}
	return &Report{
		ID:    "fig13",
		Title: "YCSB-E (95% SCAN / 5% INSERT) on the Redis-like store",
		PaperClaim: "UnRep is CPU-bound; 7 nodes reach ≈142k ops/s under 500µs SLO " +
			"— ≈4× over UnRep, consistent with Amdahl's law given that only SCANs " +
			"load balance",
		Curves: curves,
		Tables: []*stats.Table{
			CurveTable("Fig. 13 data", curves),
			SLOTable("Fig. 13", curves, SLO),
		},
	}
}
