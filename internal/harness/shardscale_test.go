package harness

import (
	"strings"
	"testing"
	"time"
)

func TestRunShardPointMeasuresSanely(t *testing.T) {
	res := RunShardPoint(ShardSpec{Groups: 2, Pool: 6, Replication: 3}, 120_000, RunConfig{
		Seed: 7, Warmup: 5 * time.Millisecond, Duration: 20 * time.Millisecond, Clients: 2,
	})
	p := res.Point
	if p.OfferedKRPS < 95 || p.OfferedKRPS > 145 {
		t.Fatalf("offered = %v", p)
	}
	if p.AchievedKRPS < 0.95*p.OfferedKRPS {
		t.Fatalf("achieved = %v", p)
	}
	if p.P99 < p.P50 || p.P50 <= 0 {
		t.Fatalf("latency summary inconsistent: %v", p)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("breakdown covers %d groups, want 2", len(res.Shards))
	}
	total := res.Shards[0].Completed + res.Shards[1].Completed
	for _, st := range res.Shards {
		if st.Completed < total/8 {
			t.Fatalf("group %d served only %d of %d ops — partition unbalanced",
				st.Group, st.Completed, total)
		}
	}
	for g := range res.Cluster.Groups {
		if res.Cluster.LeaderOf(g) == nil {
			t.Fatalf("group %d has no leader after run", g)
		}
	}
}

func TestShardscaleSmoke(t *testing.T) {
	// A G ∈ {1, 2} sweep at tiny scale: the report must render, and two
	// disjoint groups must outscale one under the SLO. The full G ∈
	// {1,2,4,8} sweep (and the ≥3x-at-G=4 check) runs via
	// `hoverbench -experiment shardscale`.
	sc := tinyScale()
	sc.ShardGroups = []int{1, 2}
	rep := Shardscale(sc)
	out := rep.Render()
	if !strings.Contains(out, "SHARDSCALE") {
		t.Fatalf("render missing header:\n%.200s", out)
	}
	if !strings.Contains(out, "per-shard breakdown") {
		t.Fatal("render missing per-shard breakdown")
	}
	if len(rep.Curves) != 2 {
		t.Fatalf("got %d curves", len(rep.Curves))
	}
	g1 := rep.Curves[0].MaxUnderSLO(SLO)
	g2 := rep.Curves[1].MaxUnderSLO(SLO)
	if g1 <= 0 || g2 <= 0 {
		t.Fatalf("no throughput under SLO: g1=%.0f g2=%.0f", g1, g2)
	}
	if g2 < 1.5*g1 {
		t.Fatalf("G=2 (%.0f kRPS) did not outscale G=1 (%.0f kRPS)", g2, g1)
	}
}
