package harness

import (
	"fmt"
	"strings"
	"time"

	"hovercraft/internal/stats"
)

// Report is the output of one experiment: what the paper claimed, what we
// measured, and the raw rows to reproduce the figure.
type Report struct {
	ID         string // "fig7", "table1", ...
	Title      string
	PaperClaim string
	Tables     []*stats.Table
	Curves     []Curve
	Series     []*stats.Series
	Notes      []string
}

// CurveTable renders curves as a throughput/latency table (the figure's
// underlying data points).
func CurveTable(title string, curves []Curve) *stats.Table {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"system", "offered_kRPS", "achieved_kRPS", "p50", "p99", "nack_kRPS", "loss_kRPS"},
	}
	for _, c := range curves {
		for _, p := range c.Points {
			t.AddRow(c.Label,
				fmt.Sprintf("%.0f", p.OfferedKRPS),
				fmt.Sprintf("%.0f", p.AchievedKRPS),
				fmtDur(p.P50), fmtDur(p.P99),
				fmt.Sprintf("%.1f", p.NackKRPS),
				fmt.Sprintf("%.1f", p.LossKRPS))
		}
	}
	return t
}

// SLOTable renders the max-throughput-under-SLO summary of curves.
func SLOTable(title string, curves []Curve, slo time.Duration) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("%s (max kRPS under %v p99 SLO)", title, slo),
		Headers: []string{"system", "max_kRPS_under_SLO"},
	}
	for _, c := range curves {
		t.AddRow(c.Label, fmt.Sprintf("%.0f", c.MaxUnderSLO(slo)))
	}
	return t
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	}
}

// AsciiPlot draws curves as a rough latency-vs-throughput scatter for
// terminal inspection. X is achieved kRPS, Y is p99 µs (log-ish cap).
func AsciiPlot(curves []Curve, yCapUs float64) string {
	const w, h = 72, 18
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	maxX := 1.0
	for _, c := range curves {
		for _, p := range c.Points {
			if p.AchievedKRPS > maxX {
				maxX = p.AchievedKRPS
			}
		}
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	var legend strings.Builder
	for ci, c := range curves {
		m := marks[ci%len(marks)]
		fmt.Fprintf(&legend, "  %c %s\n", m, c.Label)
		for _, p := range c.Points {
			x := int(p.AchievedKRPS / maxX * float64(w-1))
			y := float64(p.P99) / 1e3
			if y > yCapUs {
				y = yCapUs
			}
			row := h - 1 - int(y/yCapUs*float64(h-1))
			if row < 0 {
				row = 0
			}
			if x >= 0 && x < w && row >= 0 && row < h {
				grid[row][x] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "p99 (µs, cap %.0f)\n", yCapUs)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "+%s\n 0%sachieved kRPS (max %.0f)\n", strings.Repeat("-", w), strings.Repeat(" ", w-30), maxX)
	b.WriteString(legend.String())
	return b.String()
}

// Render formats the full report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==================================================================\n")
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(r.ID), r.Title)
	fmt.Fprintf(&b, "Paper: %s\n", r.PaperClaim)
	fmt.Fprintf(&b, "==================================================================\n\n")
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	if len(r.Curves) > 0 {
		b.WriteString(AsciiPlot(r.Curves, 2*float64(SLO)/1e3))
		b.WriteString("\n")
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "-- series: %s (%s)\n", s.Name, s.YLegend)
		for i := 0; i < s.Len(); i++ {
			tm, v := s.At(i)
			fmt.Fprintf(&b, "   t=%8.3fs  %10.2f\n", tm.Seconds(), v)
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
