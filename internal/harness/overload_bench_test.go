package harness

import (
	"testing"
	"time"

	"hovercraft/internal/loadgen"
)

// The overload gates run in simulator virtual time, so unlike the
// allocation and syscall baselines they are bit-identical across
// machines: goodput/cap is the fraction of measured 1x capacity that
// survives 2x offered load, admitted_p99_us is the tail of admitted
// work, and nacked/req at half load catches the controller shedding
// traffic it has no reason to shed. CI gates all three against
// BENCH_overload.json (cmd/benchcheck): goodput is a floor, the other
// two are ceilings.

func overloadBenchWL() SyntheticSpec {
	return SyntheticSpec{Service: loadgen.Fixed(10 * time.Microsecond), ReqSize: 24, ReplySize: 8}
}

// BenchmarkOverloadAdaptive2x probes 1x capacity, then offers twice
// that with the AIMD controller on. The paper-level claim under gate:
// graceful degradation, not collapse.
func BenchmarkOverloadAdaptive2x(b *testing.B) {
	cfg := QuickScale().runCfg()
	for i := 0; i < b.N; i++ {
		probe := RunOverloadPoint(OverloadRun{
			Adaptive: true, FlowLimit: 4096, WL: overloadBenchWL(),
			Rate: 100_000, Retries: 2,
		}, cfg)
		capacity := probe.Point.AchievedKRPS
		res := RunOverloadPoint(OverloadRun{
			Adaptive: true, FlowLimit: 4096, WL: overloadBenchWL(),
			Rate: 2 * capacity * 1000, Retries: 2,
		}, cfg)
		b.ReportMetric(res.Point.AchievedKRPS/capacity, "goodput/cap")
		b.ReportMetric(float64(res.Point.P99.Nanoseconds())/1e3, "admitted_p99_us")
	}
}

// BenchmarkOverloadHalfLoad offers half the nominal capacity: a healthy
// controller admits essentially everything, so the NACK-per-completed
// ratio gates against over-shedding regressions (a controller that
// panics below capacity trades goodput for nothing).
func BenchmarkOverloadHalfLoad(b *testing.B) {
	cfg := QuickScale().runCfg()
	for i := 0; i < b.N; i++ {
		res := RunOverloadPoint(OverloadRun{
			Adaptive: true, FlowLimit: 4096, WL: overloadBenchWL(),
			Rate: 50_000, Retries: 2,
		}, cfg)
		b.ReportMetric(res.Res.NackRate/res.Res.Achieved, "nacked/req")
		b.ReportMetric(res.Point.AchievedKRPS, "goodput_krps")
	}
}
