package harness

import (
	"strings"
	"testing"
	"time"

	"hovercraft/internal/loadgen"
	"hovercraft/internal/r2p2"
)

// tinyScale keeps harness tests fast while still exercising the full
// cluster/measure/report pipeline.
func tinyScale() Scale {
	return Scale{Warmup: 3 * time.Millisecond, Duration: 10 * time.Millisecond, Points: 2, Seed: 1}
}

func TestRunDispatchAndUnknown(t *testing.T) {
	if _, err := Run("nope", tinyScale()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, id := range Experiments() {
		if id == "fig12" || id == "fig9" || id == "fig8" || id == "shardscale" || id == "failover" {
			continue // long even at tiny scale; covered by bench_test / dedicated tests
		}
		rep, err := Run(id, tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := rep.Render()
		if !strings.Contains(out, strings.ToUpper(id)) {
			t.Fatalf("%s render missing header:\n%s", id, out[:200])
		}
	}
}

func TestRunPointMeasuresSanely(t *testing.T) {
	wl := SyntheticSpec{Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8}
	res := RunPoint(Hovercraft(3), wl, 100_000, RunConfig{
		Seed: 5, Warmup: 5 * time.Millisecond, Duration: 20 * time.Millisecond, Clients: 2,
	})
	p := res.Point
	if p.OfferedKRPS < 80 || p.OfferedKRPS > 120 {
		t.Fatalf("offered = %v", p)
	}
	if p.AchievedKRPS < 0.95*p.OfferedKRPS {
		t.Fatalf("achieved = %v", p)
	}
	if p.P99 < p.P50 || p.P50 <= 0 {
		t.Fatalf("latency summary inconsistent: %v", p)
	}
	if res.Cluster.Leader() == nil {
		t.Fatal("no leader after run")
	}
	if res.Hist.Count() == 0 {
		t.Fatal("no samples merged")
	}
}

func TestMaxUnderSLO(t *testing.T) {
	c := Curve{Points: []Point{
		{OfferedKRPS: 100, AchievedKRPS: 100, P99: 100 * time.Microsecond},
		{OfferedKRPS: 200, AchievedKRPS: 200, P99: 400 * time.Microsecond},
		{OfferedKRPS: 300, AchievedKRPS: 300, P99: 900 * time.Microsecond}, // over SLO
		{OfferedKRPS: 400, AchievedKRPS: 250, P99: 100 * time.Microsecond}, // not keeping up
	}}
	if got := c.MaxUnderSLO(SLO); got != 200 {
		t.Fatalf("max under SLO = %v", got)
	}
	if got := (Curve{}).MaxUnderSLO(SLO); got != 0 {
		t.Fatalf("empty curve = %v", got)
	}
}

func TestSweepRates(t *testing.T) {
	rates := SweepRates(1000, 5)
	if len(rates) != 5 {
		t.Fatalf("len = %d", len(rates))
	}
	if rates[0] != 300 || rates[4] != 1000 {
		t.Fatalf("endpoints = %v", rates)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatalf("not increasing: %v", rates)
		}
		// Denser near the top.
		if i >= 2 && rates[i]-rates[i-1] > rates[i-1]-rates[i-2] {
			t.Fatalf("not concentrating near cap: %v", rates)
		}
	}
	if got := SweepRates(500, 1); len(got) != 1 || got[0] != 500 {
		t.Fatalf("single point = %v", got)
	}
	if got := Linspace(0, 10, 3); got[1] != 5 {
		t.Fatalf("linspace = %v", got)
	}
}

func TestConsensusPayloadClassifier(t *testing.T) {
	if consensusPayload([]byte{1, 2}) {
		t.Fatal("short payload classified as consensus")
	}
	raftDG := r2p2.MakeMsg(r2p2.TypeRaftReq, 0, 1, 1, []byte("x"), 0)[0]
	if !consensusPayload(raftDG) {
		t.Fatal("raft datagram not classified as consensus")
	}
	respDG := r2p2.MakeResponse(r2p2.RequestID{}, []byte("reply"), 0)[0]
	if consensusPayload(respDG) {
		t.Fatal("client reply classified as consensus")
	}
}

func TestAsciiPlotRenders(t *testing.T) {
	c := []Curve{{Label: "sys", Points: []Point{
		{AchievedKRPS: 100, P99: 50 * time.Microsecond},
		{AchievedKRPS: 500, P99: 2 * time.Millisecond}, // beyond cap: clamped
	}}}
	out := AsciiPlot(c, 1000)
	if !strings.Contains(out, "sys") || !strings.Contains(out, "achieved kRPS") {
		t.Fatalf("plot missing parts:\n%s", out)
	}
}

func TestWorkloadSpecDescribe(t *testing.T) {
	s := SyntheticSpec{Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8}
	if !strings.Contains(s.Describe(), "24B") {
		t.Fatalf("describe = %q", s.Describe())
	}
	y := &YCSBESpec{Records: 10}
	if !strings.Contains(y.Describe(), "YCSB-E") {
		t.Fatalf("describe = %q", y.Describe())
	}
	if len(y.Preload()) != 10 {
		t.Fatalf("preload = %d", len(y.Preload()))
	}
}
