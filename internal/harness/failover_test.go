package harness

import (
	"testing"
	"time"
)

// TestFailoverExactlyOnce runs the failover experiment at reduced scale
// and checks its hard guarantees: the recovery summary must report zero
// acked-but-lost and zero double-applied ops, and the cluster must
// actually recover within the run.
func TestFailoverExactlyOnce(t *testing.T) {
	rep := Failover(Scale{Warmup: 5 * time.Millisecond, Duration: 20 * time.Millisecond, Seed: 7})
	if rep.ID != "failover" {
		t.Fatalf("report id = %q", rep.ID)
	}
	sum := rep.Tables[0]
	row := func(metric string) string {
		for _, r := range sum.Rows {
			if r[0] == metric {
				return r[1]
			}
		}
		t.Fatalf("summary table missing row %q", metric)
		return ""
	}
	if got := row("acked-but-lost (must be 0)"); got != "0" {
		t.Fatalf("acked-but-lost = %s", got)
	}
	if got := row("double-applied (must be 0)"); got != "0" {
		t.Fatalf("double-applied = %s", got)
	}
	if got := row("recovery time (back to 90% baseline)"); got == "never (still degraded at end of run)" {
		t.Fatal("cluster never recovered after the leader kill")
	}
	if got := row("acked ops"); got == "0" {
		t.Fatal("no ops acked — experiment produced no load")
	}
}
