package harness

import (
	"fmt"
	"time"

	"hovercraft/internal/loadgen"
	"hovercraft/internal/shard"
	"hovercraft/internal/simcluster"
	"hovercraft/internal/simnet"
	"hovercraft/internal/stats"
)

// ShardSpec configures one sharded (Multi-Raft) measurement: G groups of
// Replication replicas placed over a fixed pool of nodes. Holding the
// pool constant while G varies is the honest scaling question — sharding
// over full-membership groups cannot scale (every node still executes
// every write); sharding scales by turning idle pool nodes into
// independent consensus groups, until G*Replication exceeds the pool and
// placements overlap.
type ShardSpec struct {
	Groups      int
	Pool        int
	Replication int
}

func (s ShardSpec) label() string {
	return fmt.Sprintf("G=%d (pool %d, R=%d)", s.Groups, s.Pool, s.Replication)
}

// ShardRunResult bundles a sharded measurement with its cluster state.
type ShardRunResult struct {
	Point   Point
	Cluster *simcluster.MultiCluster
	Clients []*loadgen.Client
	Hist    *stats.Histogram
	Shards  []*loadgen.ShardStat
}

// shardWorkload is the §7.1 microbenchmark with a routing keyspace large
// enough that consistent hashing splits it evenly.
func shardWorkload() *loadgen.Synthetic {
	return &loadgen.Synthetic{
		ServiceTime: loadgen.Fixed(time.Microsecond),
		ReqSize:     24, ReplySize: 8,
		Keys: 1 << 16,
	}
}

// RunShardPoint builds a sharded cluster, offers rate RPS spread over
// shard-aware clients, and reports the merged measurement.
func RunShardPoint(spec ShardSpec, rate float64, rc RunConfig) ShardRunResult {
	rc.defaults()
	serverHost := simnet.DefaultHostConfig()
	serverHost.ProcBytesPerSec = 1_670_000_000
	serverHost.ProcFilter = consensusPayload
	cl := simcluster.NewMulti(simcluster.MultiOptions{
		Groups: spec.Groups, Nodes: spec.Pool, Replication: spec.Replication,
		Seed: rc.Seed, Host: serverHost,
		DisableReplyLB: true, // isolate protocol overheads, as in §7.1
		Obs:            rc.Obs,
	})
	router := shard.NewRouter(cl.Map, nil)
	var clients []*loadgen.Client
	for i := 0; i < rc.Clients; i++ {
		c := loadgen.NewClient(cl.Net, fmt.Sprintf("client%d", i), simnet.DefaultHostConfig(),
			loadgen.ClientConfig{
				Rate:   rate / float64(rc.Clients),
				Warmup: rc.Warmup, Duration: rc.Duration,
				Timeout:  20 * time.Millisecond,
				Workload: shardWorkload(),
				Target:   cl.ServiceAddr,
				Port:     uint16(1000 + i),
				Router:   router,
				Obs:      rc.Obs,
			})
		clients = append(clients, c)
	}
	cl.Start()
	for _, c := range clients {
		c.Start()
	}
	cl.Run(rc.Warmup + rc.Duration + 40*time.Millisecond)

	hist := loadgen.MergeHistograms(clients)
	var offered, achieved, nacked, lost float64
	for _, c := range clients {
		r := c.Result()
		offered += r.Offered
		achieved += r.Achieved
		nacked += r.NackRate
		lost += r.LossRate
	}
	sum := hist.Summary()
	return ShardRunResult{
		Point: Point{
			OfferedKRPS:  offered / 1000,
			AchievedKRPS: achieved / 1000,
			P99:          sum.P99,
			P50:          sum.P50,
			NackKRPS:     nacked / 1000,
			LossKRPS:     lost / 1000,
		},
		Cluster: cl,
		Clients: clients,
		Hist:    hist,
		Shards:  loadgen.MergeShardStats(clients),
	}
}

// RunShardCurve sweeps offered rates over one shard configuration.
func RunShardCurve(spec ShardSpec, rates []float64, rc RunConfig) Curve {
	c := Curve{Label: spec.label()}
	for _, r := range rates {
		res := RunShardPoint(spec, r, rc)
		c.Points = append(c.Points, res.Point)
	}
	return c
}

// Shardscale is the Multi-Raft scale-out experiment: max throughput under
// the 500µs SLO as the group count G sweeps over a fixed 12-node pool
// with replication 3. Groups are disjoint up to G=4 (= pool/replication),
// so aggregate capacity grows near-linearly there; at G=8 placements
// overlap — every node hosts two groups — and throughput saturates at
// the pool's aggregate capacity instead of collapsing.
func Shardscale(sc Scale) *Report {
	const (
		pool        = 12
		replication = 3
	)
	groups := sc.ShardGroups
	if len(groups) == 0 {
		groups = []int{1, 2, 4, 8}
	}

	t := &stats.Table{
		Title:   fmt.Sprintf("Max kRPS under 500µs SLO vs group count (pool %d, R=%d, S=1µs, 24B/8B)", pool, replication),
		Headers: []string{"groups", "max kRPS under SLO", "speedup vs G=1", "p99 at max"},
	}
	rep := &Report{
		ID:    "shardscale",
		Title: "Multi-Raft scale-out: throughput under SLO vs shard count",
		PaperClaim: "the paper's single-group HovercRaft is leader-throughput-bound; " +
			"partitioning the keyspace over G groups placed across the same pool " +
			"scales aggregate RPS near-linearly until G exceeds pool/replication, " +
			"then saturates at pool capacity (no collapse)",
		Tables: []*stats.Table{t},
	}

	var curves []Curve
	base := 0.0
	for _, g := range groups {
		eff := g
		if max := pool / replication; eff > max {
			eff = max
		}
		spec := ShardSpec{Groups: g, Pool: pool, Replication: replication}
		cfg := sc.runCfg()
		// Spread client load so the generators never bottleneck a multi-
		// group sweep (each group can absorb ~1M RPS on its own).
		cfg.Clients = 4 * eff
		rates := SweepRates(1_050_000*float64(eff), sc.Points)
		curve := RunShardCurve(spec, rates, cfg)
		curves = append(curves, curve)

		max := curve.MaxUnderSLO(SLO)
		if g == groups[0] && g == 1 {
			base = max
		}
		speedup := "n/a"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", max/base)
		}
		p99 := "n/a"
		for _, p := range curve.Points {
			if p.AchievedKRPS == max {
				p99 = p.P99.String()
			}
		}
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%.0f", max), speedup, p99)
	}
	rep.Curves = curves
	rep.Tables = append(rep.Tables, CurveTable("shardscale data", curves))

	// Per-shard breakdown at the largest G, highest under-SLO load: shows
	// the consistent-hash partition is balanced and every group carries
	// its share.
	last := groups[len(groups)-1]
	eff := last
	if max := pool / replication; eff > max {
		eff = max
	}
	cfg := sc.runCfg()
	cfg.Clients = 4 * eff
	res := RunShardPoint(ShardSpec{Groups: last, Pool: pool, Replication: replication},
		700_000*float64(eff), cfg)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("per-shard breakdown at G=%d, %.0f kRPS offered:\n%s",
			last, res.Point.OfferedKRPS, loadgen.ShardTable(res.Shards, cfg.Duration)))
	return rep
}
