package harness

import (
	"fmt"
	"time"

	"hovercraft/internal/admission"
	"hovercraft/internal/loadgen"
	"hovercraft/internal/shard"
	"hovercraft/internal/simcluster"
	"hovercraft/internal/simnet"
	"hovercraft/internal/stats"
)

// OverloadClients is the swarm population every overload run offers
// load from: 10⁵ open-loop simulated clients, so the middlebox and the
// dedup caches face a realistic (port-diverse) client fleet rather than
// four fat generators.
const OverloadClients = 100_000

// OverloadRun configures one swarm-driven overload measurement against
// a 3-node HovercRaft++ cluster behind the flow-control middlebox.
type OverloadRun struct {
	Label string
	// Adaptive turns the AIMD admission controller on; otherwise the
	// middlebox window is the fixed FlowLimit for the whole run.
	Adaptive  bool
	FlowLimit int
	WL        WorkloadSpec
	// Rate is the offered load (req/s); RateFn overrides it per-arrival
	// when non-nil (ramps, flash crowds).
	Rate   float64
	RateFn func(time.Duration) float64
	// Retries is the swarm's per-request retransmission budget (NACKed
	// requests re-offer after the retry-after hint, jittered).
	Retries   int
	OnCluster func(c *simcluster.Cluster)
	Sample    time.Duration
}

// OverloadResult is one overload measurement: the usual point plus the
// SLO burn of admitted traffic and the admission controller's final
// state.
type OverloadResult struct {
	Point Point
	// Burn is the admitted-traffic SLO burn rate: fraction of completed
	// requests over the 500µs p99 budget divided by the 1% allowance
	// (1.0 = exactly spending the budget).
	Burn      float64
	Res       loadgen.Result
	Cluster   *simcluster.Cluster
	Swarm     *loadgen.Swarm
	Admission admission.Summary // zero unless adaptive
}

// RunOverloadPoint builds the cluster, offers load from the client
// swarm, and reports the measurement.
func RunOverloadPoint(r OverloadRun, rc RunConfig) OverloadResult {
	rc.defaults()
	serverHost := simnet.DefaultHostConfig()
	serverHost.ProcBytesPerSec = 1_670_000_000
	serverHost.ProcFilter = consensusPayload
	cl := simcluster.New(simcluster.Options{
		Setup: simcluster.SetupHovercraftPP, Nodes: 3, Seed: rc.Seed, Host: serverHost,
		Bound:             32,
		FlowLimit:         r.FlowLimit,
		AdaptiveAdmission: r.Adaptive,
		// Slow-start: open at a modest window and let additive increase
		// find the ceiling, instead of admitting a FlowLimit-deep backlog
		// before the first congestion signal arrives.
		Admission:  admission.Config{Initial: 256},
		NewService: r.WL.NewService,
		Preload:    r.WL.Preload(),
		Obs:        rc.Obs,
	})
	sw := loadgen.NewSwarm(cl.Net, "swarm", simnet.DefaultHostConfig(), loadgen.SwarmConfig{
		Clients: OverloadClients,
		Rate:    r.Rate, RateFn: r.RateFn,
		Warmup: rc.Warmup, Duration: rc.Duration,
		Timeout: 20 * time.Millisecond,
		Retries: r.Retries, RetryBackoff: time.Millisecond,
		Workload:    r.WL.NewWorkload(false),
		Target:      cl.ServiceAddr,
		SampleEvery: r.Sample,
	})
	cl.Start()
	sw.Start()
	if r.OnCluster != nil {
		r.OnCluster(cl)
	}
	// Controller state is most meaningful at the instant load stops: by
	// run end the drained cluster has relaxed the retry-after hint and
	// the signal reflects idle heartbeats, not the overload.
	var admAtLoadEnd admission.Summary
	if cl.Admission != nil {
		cl.Sim.After(rc.Warmup+rc.Duration, func() { admAtLoadEnd = cl.Admission.Snapshot() })
	}
	cl.Run(rc.Warmup + rc.Duration + 40*time.Millisecond)

	res := sw.Result()
	out := OverloadResult{
		Point: Point{
			OfferedKRPS:  res.Offered / 1000,
			AchievedKRPS: res.Achieved / 1000,
			P99:          res.Latency.P99,
			P50:          res.Latency.P50,
			NackKRPS:     res.NackRate / 1000,
			LossKRPS:     res.LossRate / 1000,
		},
		Burn:    sw.Latency.FractionAbove(int64(SLO)) / 0.01,
		Res:     res,
		Cluster: cl,
		Swarm:   sw,
	}
	if cl.Admission != nil {
		// Window/hint/signal from the load-end capture; the lifetime
		// counters (increases/decreases/nacks) from the final snapshot.
		final := cl.Admission.Snapshot()
		admAtLoadEnd.Increases = final.Increases
		admAtLoadEnd.Decreases = final.Decreases
		out.Admission = admAtLoadEnd
	}
	return out
}

// overloadRow renders one measurement into the head-to-head table.
func overloadRow(t *stats.Table, label string, capacity float64, r OverloadResult) {
	window := "fixed"
	if r.Admission.Window > 0 {
		window = fmt.Sprintf("%d", r.Admission.Window)
	}
	t.AddRow(label,
		fmt.Sprintf("%.0f", r.Point.OfferedKRPS),
		fmt.Sprintf("%.0f", r.Point.AchievedKRPS),
		fmt.Sprintf("%.0f%%", 100*r.Point.AchievedKRPS/capacity),
		r.Point.P99.String(),
		fmt.Sprintf("%.1f", r.Point.NackKRPS),
		fmt.Sprintf("%.2f", r.Burn),
		window,
	)
}

// Overload is the graceful-degradation experiment: a 10⁵-client swarm
// drives a 3-node HovercRaft++ cluster to 2× its measured capacity and
// beyond. With the fixed flow-control window the admitted queue depth
// is whatever the window allows, so the tail blows through the SLO;
// with the AIMD admission controller the window tracks the queue-delay
// budget, excess load is shed as hinted NACKs, and goodput holds near
// capacity with the admitted tail inside the SLO. Adversarial scenarios
// (heavy tails, hot-shard storms, diurnal ramps, a retry storm across a
// failover) probe the same property from different directions.
func Overload(sc Scale) *Report {
	wl := SyntheticSpec{Service: loadgen.Fixed(10 * time.Microsecond), ReqSize: 24, ReplySize: 8}
	const nominal = 100_000.0 // 1/S̄: one core's worth of 10µs writes
	const fixedLimit = 4096   // the permissive default window
	cfg := sc.runCfg()

	rep := &Report{
		ID:    "overload",
		Title: "Adaptive admission under 2x overload (10^5-client swarm, N=3 HovercRaft++)",
		PaperClaim: "flow control must shed excess load before it queues (§6.3): a " +
			"fixed window admits a full window's worth of queueing and the tail " +
			"collapses under sustained overload, while a queue-delay-driven window " +
			"keeps goodput near capacity with the admitted tail inside the 500µs SLO",
	}

	// 1× capacity probe: offered load at the analytic capacity with the
	// adaptive controller on; what completes is the measured capacity.
	probe := RunOverloadPoint(OverloadRun{
		Adaptive: true, FlowLimit: fixedLimit, WL: wl, Rate: nominal, Retries: 2,
	}, cfg)
	capacity := probe.Point.AchievedKRPS
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"measured 1x capacity: %.0f kRPS (offered %.0f kRPS, p99 %v)",
		capacity, probe.Point.OfferedKRPS, probe.Point.P99))

	// Head-to-head at 2× capacity: fixed window vs adaptive controller.
	head := &stats.Table{
		Title: fmt.Sprintf("2x overload (offered %.0f kRPS): fixed window vs adaptive admission", 2*capacity),
		Headers: []string{"admission", "offered k", "goodput k", "of 1x cap",
			"admitted p99", "nack k/s", "SLO burn", "final window"},
	}
	rate2x := 2 * capacity * 1000
	fixed := RunOverloadPoint(OverloadRun{
		Adaptive: false, FlowLimit: fixedLimit, WL: wl, Rate: rate2x, Retries: 2,
	}, cfg)
	adaptive := RunOverloadPoint(OverloadRun{
		Adaptive: true, FlowLimit: fixedLimit, WL: wl, Rate: rate2x, Retries: 2,
	}, cfg)
	overloadRow(head, fmt.Sprintf("fixed limit %d", fixedLimit), capacity, fixed)
	overloadRow(head, "adaptive (AIMD)", capacity, adaptive)
	rep.Tables = append(rep.Tables, head)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"adaptive controller at 2x: window %d, retry-after hint %v, signal p99 %v, %d decreases / %d increases",
		adaptive.Admission.Window, adaptive.Admission.Hint,
		adaptive.Admission.P99, adaptive.Admission.Decreases, adaptive.Admission.Increases))

	// Load sweep 0.5×..2× capacity, both admission modes: the goodput-
	// vs-offered-load curve that shows shape, not just the 2× endpoint.
	sweepT := &stats.Table{
		Title: "Load sweep: goodput / admitted p99 / NACK rate / SLO burn vs offered load",
		Headers: []string{"offered k", "mode", "goodput k", "admitted p99",
			"nack k/s", "SLO burn"},
	}
	var fixedCurve, adaptCurve Curve
	fixedCurve.Label = "fixed window"
	adaptCurve.Label = "adaptive admission"
	for _, mult := range Linspace(0.5, 2.0, sc.Points) {
		rate := mult * capacity * 1000
		for _, mode := range []struct {
			label    string
			adaptive bool
			curve    *Curve
		}{{"fixed", false, &fixedCurve}, {"adaptive", true, &adaptCurve}} {
			r := RunOverloadPoint(OverloadRun{
				Adaptive: mode.adaptive, FlowLimit: fixedLimit, WL: wl,
				Rate: rate, Retries: 2,
			}, cfg)
			mode.curve.Points = append(mode.curve.Points, r.Point)
			sweepT.AddRow(fmt.Sprintf("%.0f", r.Point.OfferedKRPS), mode.label,
				fmt.Sprintf("%.0f", r.Point.AchievedKRPS), r.Point.P99.String(),
				fmt.Sprintf("%.1f", r.Point.NackKRPS), fmt.Sprintf("%.2f", r.Burn))
		}
	}
	rep.Curves = append(rep.Curves, fixedCurve, adaptCurve)
	rep.Tables = append(rep.Tables, sweepT)

	// Adversarial scenarios, all with the adaptive controller at ~2×.
	adv := &stats.Table{
		Title: "Adversarial overload scenarios (adaptive admission)",
		Headers: []string{"scenario", "offered k", "goodput k", "of 1x cap",
			"admitted p99", "nack k/s", "SLO burn", "final window"},
	}
	bimodal := RunOverloadPoint(OverloadRun{
		Adaptive: true, FlowLimit: fixedLimit,
		WL:   SyntheticSpec{Service: loadgen.PaperBimodal(10 * time.Microsecond), ReqSize: 24, ReplySize: 8},
		Rate: rate2x, Retries: 2,
	}, cfg)
	overloadRow(adv, "bimodal 10x/10% at 2x", capacity, bimodal)

	pareto := loadgen.Pareto{Scale: 5 * time.Microsecond, Alpha: 1.3, Cap: 2 * time.Millisecond}
	paretoCap := 1e9 / float64(pareto.Mean().Nanoseconds()) // req/s one core sustains
	heavy := RunOverloadPoint(OverloadRun{
		Adaptive: true, FlowLimit: fixedLimit,
		WL:   SyntheticSpec{Service: pareto, ReqSize: 24, ReplySize: 8},
		Rate: 2 * paretoCap, Retries: 2,
	}, cfg)
	overloadRow(adv, "heavy tail (Pareto a=1.3) at 2x", paretoCap/1000, heavy)

	ramp := RunOverloadPoint(OverloadRun{
		Adaptive: true, FlowLimit: fixedLimit, WL: wl,
		RateFn:  loadgen.DiurnalRate(0.5*capacity*1000, 2.5*capacity*1000, cfg.Warmup+cfg.Duration),
		Retries: 2,
	}, cfg)
	overloadRow(adv, "diurnal ramp 0.5x..2.5x", capacity, ramp)

	storm := RunOverloadPoint(OverloadRun{
		Adaptive: true, FlowLimit: fixedLimit, WL: wl,
		Rate: 1.2 * capacity * 1000, Retries: 3,
		OnCluster: func(c *simcluster.Cluster) {
			c.Sim.After(cfg.Warmup+cfg.Duration/3, func() {
				if lead := c.Leader(); lead != nil {
					lead.Crash()
				}
			})
		},
	}, cfg)
	overloadRow(adv, "retry storm across failover (1.2x)", capacity, storm)
	rep.Tables = append(rep.Tables, adv)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"failover scenario: %d retransmissions from the swarm, %d duplicate replies suppressed",
		storm.Res.Retries, storm.Res.DupsSuppressed))

	// Hot-shard storm: Zipfian keys against a G=4 sharded deployment —
	// per-group admission sheds on the hot group only.
	rep.Tables = append(rep.Tables, overloadHotShard(sc))
	rep.Notes = append(rep.Notes,
		"hot-shard table: per-group admission confines NACKs and window shrinkage "+
			"to the group owning the Zipf head; cold groups keep their full window")
	return rep
}

// overloadHotShard runs the Zipf hot-key storm against a sharded
// deployment with per-group adaptive admission and reports the
// per-group breakdown: rejection and window shrinkage stay on the hot
// group.
func overloadHotShard(sc Scale) *stats.Table {
	cfg := sc.runCfg()
	serverHost := simnet.DefaultHostConfig()
	serverHost.ProcBytesPerSec = 1_670_000_000
	serverHost.ProcFilter = consensusPayload
	cl := simcluster.NewMulti(simcluster.MultiOptions{
		Groups: 4, Nodes: 12, Replication: 3,
		Seed: cfg.Seed, Host: serverHost,
		DisableReplyLB:    true,
		FlowLimit:         4096,
		AdaptiveAdmission: true,
	})
	router := shard.NewRouter(cl.Map, nil)
	sw := loadgen.NewSwarm(cl.Net, "swarm", simnet.DefaultHostConfig(), loadgen.SwarmConfig{
		Clients: OverloadClients,
		// 2× one group's capacity, nearly all of it routed to the Zipf
		// head's group.
		Rate:   250_000,
		Warmup: cfg.Warmup, Duration: cfg.Duration,
		Timeout: 20 * time.Millisecond,
		Retries: 2, RetryBackoff: time.Millisecond,
		Workload: &loadgen.ZipfKeyed{
			Inner: &loadgen.Synthetic{ServiceTime: loadgen.Fixed(10 * time.Microsecond),
				ReqSize: 24, ReplySize: 8},
			Theta: 2.5, Keys: 1 << 16,
		},
		Target: cl.ServiceAddr,
		Router: router,
	})
	cl.Start()
	sw.Start()
	// Per-group controller state at load end, for the same reason
	// RunOverloadPoint captures it there: the post-drain snapshot shows
	// a relaxed window and an idle signal.
	snaps := make(map[int]admission.Summary)
	cl.Sim.After(cfg.Warmup+cfg.Duration, func() {
		for _, sg := range cl.Groups {
			snaps[int(sg.ID)] = sg.Ctrl.Snapshot()
		}
	})
	cl.Run(cfg.Warmup + cfg.Duration + 40*time.Millisecond)

	t := &stats.Table{
		Title: "Zipf hot-key storm (theta=2.5) vs per-group admission, G=4, 250 kRPS offered",
		Headers: []string{"group", "offered/s", "achieved/s", "p99", "nacked",
			"window", "ctl p99"},
	}
	stats := sw.ShardStats()
	for _, sg := range cl.Groups {
		var st *loadgen.ShardStat
		for _, s := range stats {
			if s.Group == int(sg.ID) {
				st = s
			}
		}
		if st == nil {
			continue
		}
		snap := snaps[int(sg.ID)]
		secs := cfg.Duration.Seconds()
		t.AddRow(fmt.Sprintf("g%d", sg.ID),
			fmt.Sprintf("%.0f", float64(st.Sent)/secs),
			fmt.Sprintf("%.0f", float64(st.Completed)/secs),
			st.Latency.Summary().P99.String(),
			fmt.Sprintf("%d", st.Nacked),
			fmt.Sprintf("%d", snap.Window),
			snap.P99.String(),
		)
	}
	return t
}
