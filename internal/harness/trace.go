package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hovercraft/internal/obs"
)

// TracedPoint is RunPoint with a fresh observability session attached:
// every request's lifecycle is stamped across the cluster and clients,
// cluster events are logged, and the leader's counters plus the
// flow-control state are registered into the session's metrics registry.
func TracedPoint(sys SystemSpec, wl WorkloadSpec, rate float64, rc RunConfig) (RunResult, *obs.Obs) {
	o := obs.New()
	rc.Obs = o
	res := RunPoint(sys, wl, rate, rc)
	registerClusterMetrics(o, res)
	return res, o
}

// registerClusterMetrics folds the finished run's cluster-side sources
// into the observability registry so one snapshot covers the whole run.
func registerClusterMetrics(o *obs.Obs, res RunResult) {
	reg := o.Metrics()
	for _, n := range res.Cluster.Nodes {
		prefix := fmt.Sprintf("node%d", n.ID)
		if n.Unrep != nil {
			reg.CounterSet(prefix, n.Unrep.Counters())
		} else if n.Engine != nil {
			reg.CounterSet(prefix, n.Engine.Counters())
		}
	}
	if flow := res.Cluster.Flow; flow != nil {
		reg.Counter("flow.nacked", func() uint64 { return flow.Nacked })
		reg.Gauge("flow.inflight", func() float64 { return float64(flow.InFlight()) })
	}
}

// writeTraceArtifacts exports the session as <dir>/<name>.trace.json
// (Chrome trace-event format, Perfetto-loadable) and
// <dir>/<name>.metrics.json (registry snapshot). Failures become report
// notes rather than errors: tracing must never sink an experiment.
func writeTraceArtifacts(rep *Report, o *obs.Obs, dir, name string) {
	write := func(path string, fn func(f *os.File) error) {
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("trace export failed: %v", err))
			return
		}
		rep.Notes = append(rep.Notes, "wrote "+path)
	}
	write(filepath.Join(dir, name+".trace.json"), func(f *os.File) error {
		return o.WriteTrace(f)
	})
	write(filepath.Join(dir, name+".metrics.json"), func(f *os.File) error {
		return o.Metrics().WriteJSON(f)
	})
}

// slug converts an experiment label into a filesystem-safe name
// ("HovercRaft++ N=3" → "hovercraft_pp_n_3").
func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "++", "_pp")
	var b strings.Builder
	lastUnder := true
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnder = false
		default:
			if !lastUnder {
				b.WriteByte('_')
				lastUnder = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}
