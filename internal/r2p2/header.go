// Package r2p2 implements the R2P2 datacenter RPC transport protocol
// (Kogias et al., ATC'19) as used by HovercRaft: a UDP-based
// request/response protocol whose header carries routing policy, making
// RPCs first-class, in-network-steerable entities.
//
// The properties HovercRaft relies on, all implemented here:
//
//   - an RPC is uniquely identified by the 3-tuple (req_id, src_ip,
//     src_port) carried in every packet, so any node that saw the request
//     can be told to act on it by metadata alone;
//   - the POLICY field tags requests needing total order
//     (REPLICATED_REQ) or totally-ordered-but-read-only
//     (REPLICATED_REQ_R) handling;
//   - the replier of a request may differ from the host the request was
//     sent to — responses are matched by the 3-tuple, not the peer
//     address — which is what makes reply load balancing possible;
//   - FEEDBACK messages are a repurposable signalling channel (HovercRaft
//     uses them for multicast flow control);
//   - requests and responses larger than one MTU are fragmented and
//     reassembled by the transport.
//
// The package is transport-agnostic: it produces and consumes datagram
// byte slices and is used both over the simulated fabric and over real
// UDP sockets.
package r2p2

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MessageType distinguishes R2P2 packets. HovercRaft adds the two Raft
// types (§6.1 of the paper) so consensus traffic rides the same transport
// and can be recognized by in-network devices.
type MessageType uint8

const (
	// TypeRequest is a client RPC request.
	TypeRequest MessageType = iota
	// TypeResponse is an RPC response.
	TypeResponse
	// TypeFeedback is a repurposable signal; HovercRaft sends one to the
	// flow-control middlebox per client reply.
	TypeFeedback
	// TypeNack tells a client its request was shed by flow control.
	TypeNack
	// TypeRaftReq carries a consensus-protocol request
	// (append_entries, request_vote, recovery_request, ...).
	TypeRaftReq
	// TypeRaftResp carries a consensus-protocol response.
	TypeRaftResp

	numMessageTypes
)

func (t MessageType) String() string {
	switch t {
	case TypeRequest:
		return "REQUEST"
	case TypeResponse:
		return "RESPONSE"
	case TypeFeedback:
		return "FEEDBACK"
	case TypeNack:
		return "NACK"
	case TypeRaftReq:
		return "RAFT_REQ"
	case TypeRaftResp:
		return "RAFT_RESP"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Policy is the R2P2 routing/consistency policy of a request.
type Policy uint8

const (
	// PolicyUnrestricted requests may be served by any replica with no
	// ordering guarantee (etcd-style possibly-stale reads).
	PolicyUnrestricted Policy = iota
	// PolicyReplicated requests read and modify the state machine and
	// must be totally ordered and replicated before execution.
	PolicyReplicated
	// PolicyReplicatedRO requests are read-only: they must be totally
	// ordered for linearizability but only the designated replier
	// executes them.
	PolicyReplicatedRO
	// PolicyLinRead requests are linearizable reads served through the
	// leader-lease read-index fast path: never appended to the log,
	// executed locally by whichever replica received them once its
	// applied index passes a leader-ratified read index. Replicas that
	// cannot honor the guarantee (lease machinery disabled, follower
	// lagging past the read SLO) NACK so the client redirects.
	PolicyLinRead

	numPolicies
)

func (p Policy) String() string {
	switch p {
	case PolicyUnrestricted:
		return "UNRESTRICTED"
	case PolicyReplicated:
		return "REPLICATED_REQ"
	case PolicyReplicatedRO:
		return "REPLICATED_REQ_R"
	case PolicyLinRead:
		return "LIN_READ"
	default:
		return fmt.Sprintf("POLICY(%d)", uint8(p))
	}
}

// Header flags.
const (
	// FlagFirst marks the first fragment of a message.
	FlagFirst uint8 = 1 << 0
	// FlagLast marks the last fragment of a message.
	FlagLast uint8 = 1 << 1
)

// magicByte identifies R2P2 packets on the wire.
const magicByte uint8 = 0xA7

// HeaderSize is the fixed R2P2 header length in bytes.
const HeaderSize = 16

// Header is the R2P2 packet header. Every fragment of a message carries
// the full header; PktID/PktCount describe fragmentation.
type Header struct {
	Type     MessageType
	Policy   Policy
	Flags    uint8
	Group    uint8 // shard group the message belongs to (0 = the only group)
	SrcPort  uint16
	ReqID    uint32
	PktID    uint16 // fragment index, 0-based
	PktCount uint16 // total fragments in the message
}

// Errors returned by Unmarshal and the reassembler.
var (
	ErrShortPacket = errors.New("r2p2: packet shorter than header")
	ErrBadMagic    = errors.New("r2p2: bad magic byte")
	ErrBadType     = errors.New("r2p2: unknown message type")
	ErrBadPolicy   = errors.New("r2p2: unknown policy")
	ErrBadFragment = errors.New("r2p2: inconsistent fragment fields")
)

// Marshal appends the encoded header to b and returns the result.
func (h *Header) Marshal(b []byte) []byte {
	var buf [HeaderSize]byte
	buf[0] = magicByte
	buf[1] = 1 // version
	buf[2] = uint8(h.Type)
	buf[3] = uint8(h.Policy)
	buf[4] = h.Flags
	buf[5] = h.Group
	binary.BigEndian.PutUint16(buf[6:8], h.SrcPort)
	binary.BigEndian.PutUint32(buf[8:12], h.ReqID)
	binary.BigEndian.PutUint16(buf[12:14], h.PktID)
	binary.BigEndian.PutUint16(buf[14:16], h.PktCount)
	return append(b, buf[:]...)
}

// Unmarshal decodes a header from the first HeaderSize bytes of b.
func (h *Header) Unmarshal(b []byte) error {
	if len(b) < HeaderSize {
		return ErrShortPacket
	}
	if b[0] != magicByte {
		return ErrBadMagic
	}
	if MessageType(b[2]) >= numMessageTypes {
		return ErrBadType
	}
	if Policy(b[3]) >= numPolicies {
		return ErrBadPolicy
	}
	h.Type = MessageType(b[2])
	h.Policy = Policy(b[3])
	h.Flags = b[4]
	h.Group = b[5]
	h.SrcPort = binary.BigEndian.Uint16(b[6:8])
	h.ReqID = binary.BigEndian.Uint32(b[8:12])
	h.PktID = binary.BigEndian.Uint16(b[12:14])
	h.PktCount = binary.BigEndian.Uint16(b[14:16])
	if h.PktCount == 0 || h.PktID >= h.PktCount {
		return ErrBadFragment
	}
	return nil
}

// RequestID is the protocol-level unique identity of an RPC: the (req_id,
// src_ip, src_port) 3-tuple of the paper (§3.2). Clients guarantee
// uniqueness within their own (ip, port) space.
type RequestID struct {
	SrcIP   uint32
	SrcPort uint16
	ReqID   uint32
}

func (r RequestID) String() string {
	return fmt.Sprintf("%d:%d/%d", r.SrcIP, r.SrcPort, r.ReqID)
}

// IDOf extracts the RequestID of a message given its header and the
// sender's network address.
func IDOf(h *Header, srcIP uint32) RequestID {
	return RequestID{SrcIP: srcIP, SrcPort: h.SrcPort, ReqID: h.ReqID}
}

// Msg is a fully reassembled R2P2 message.
type Msg struct {
	Type    MessageType
	Policy  Policy
	Group   uint8
	ID      RequestID
	Payload []byte
}

// IsReadOnly reports whether the message was tagged REPLICATED_REQ_R.
func (m *Msg) IsReadOnly() bool { return m.Policy == PolicyReplicatedRO }

// IsLinRead reports whether the message rides the leader-lease
// read-index fast path (LIN_READ).
func (m *Msg) IsLinRead() bool { return m.Policy == PolicyLinRead }

// GroupInvalid on a NACK marks a shard-routing redirect (the receiver
// does not serve the request's group under its current shard map), as
// opposed to a flow-control rejection, which echoes the request's group.
// Shard maps are therefore limited to 255 groups.
const GroupInvalid uint8 = 0xFF

// SetGroup stamps the shard-group byte of one encoded datagram in place.
// Every fragment carries the full header, so stamping each datagram of a
// fragmented message tags the whole message. Short packets are ignored.
func SetGroup(dg []byte, g uint8) {
	if len(dg) >= HeaderSize {
		dg[5] = g
	}
}

// StampGroup stamps the shard-group byte on each encoded datagram.
func StampGroup(dgs [][]byte, g uint8) {
	for _, dg := range dgs {
		SetGroup(dg, g)
	}
}

// GroupOf peeks the shard-group byte of an encoded datagram without a
// full header decode (the demux path of shard-aware middleboxes).
// Malformed packets report GroupInvalid.
func GroupOf(dg []byte) uint8 {
	if len(dg) < HeaderSize || dg[0] != magicByte {
		return GroupInvalid
	}
	return dg[5]
}
