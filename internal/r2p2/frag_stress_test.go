package r2p2

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// Shard-aware clients retry on redirects and re-send whole messages, so
// the reassembler sees heavy duplication, reordering, and interleaving of
// retried copies. These tests pin that behaviour down beyond the basic
// out-of-order case.

// deliverShuffled ingests the fragments of dgs in a random order with
// every fragment duplicated `dups` extra times, and returns the completed
// message (nil if reassembly never completed).
func deliverShuffled(t *testing.T, r *Reassembler, rng *rand.Rand, dgs [][]byte, srcIP uint32, dups int) *Msg {
	t.Helper()
	var stream [][]byte
	for _, dg := range dgs {
		for i := 0; i <= dups; i++ {
			stream = append(stream, dg)
		}
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	var msg *Msg
	for _, dg := range stream {
		m, err := r.Ingest(dg, srcIP, 0)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if m != nil && msg == nil {
			msg = m
		}
	}
	return msg
}

func TestReassembleRandomPermutationsWithDuplicates(t *testing.T) {
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dgs := Fragment(Header{Type: TypeRequest, ReqID: uint32(seed)}, payload, 997)
		r := NewReassembler(time.Second)
		msg := deliverShuffled(t, r, rng, dgs, 9, rng.Intn(3))
		if msg == nil {
			t.Fatalf("seed %d: never completed", seed)
		}
		if !bytes.Equal(msg.Payload, payload) {
			t.Fatalf("seed %d: payload corrupted", seed)
		}
		// Duplicates landing after completion legitimately open a new
		// partial reassembly (indistinguishable from a retry); it must
		// be reclaimed by GC, not leak.
		if r.GC(2 * time.Second); r.Pending() != 0 {
			t.Fatalf("seed %d: %d reassemblies leaked past GC", seed, r.Pending())
		}
	}
}

func TestReassembleRetriedMessageAfterCompletion(t *testing.T) {
	// A router retry re-sends the full message under the same RequestID.
	// After the first copy completes, the duplicate copy must reassemble
	// cleanly again (servers dedup at a higher layer, not here).
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	dgs := Fragment(Header{Type: TypeRequest, ReqID: 12, SrcPort: 4}, payload, 1000)
	r := NewReassembler(time.Second)
	for round := 0; round < 3; round++ {
		var msg *Msg
		for _, dg := range dgs {
			m, err := r.Ingest(dg, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			if m != nil {
				msg = m
			}
		}
		if msg == nil || !bytes.Equal(msg.Payload, payload) {
			t.Fatalf("round %d: retried copy did not reassemble", round)
		}
	}
}

func TestReassembleInterleavedMessagesSameIdentity(t *testing.T) {
	// Fragments of a retried request may interleave with the response to
	// the original and with other shards' consensus traffic that happens
	// to share (ip, port, req_id). Type and group keep them separate.
	mk := func(typ MessageType, group uint8, fill byte) ([][]byte, []byte) {
		payload := bytes.Repeat([]byte{fill}, 2500)
		h := Header{Type: typ, Group: group, ReqID: 3, SrcPort: 7}
		return Fragment(h, payload, 1000), payload
	}
	reqA, wantA := mk(TypeRequest, 0, 'a')
	reqB, wantB := mk(TypeRequest, 1, 'b')
	resp, wantR := mk(TypeResponse, 0, 'r')

	r := NewReassembler(time.Second)
	got := make(map[string][]byte)
	var stream [][]byte
	for i := 0; i < 3; i++ { // round-robin interleave
		stream = append(stream, reqA[i], reqB[i], resp[i])
	}
	for _, dg := range stream {
		m, err := r.Ingest(dg, 11, 0)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			got[string([]byte{byte(m.Type), m.Group})] = m.Payload
		}
	}
	if len(got) != 3 {
		t.Fatalf("completed %d messages, want 3 (interleaved streams mixed)", len(got))
	}
	if !bytes.Equal(got[string([]byte{byte(TypeRequest), 0})], wantA) ||
		!bytes.Equal(got[string([]byte{byte(TypeRequest), 1})], wantB) ||
		!bytes.Equal(got[string([]byte{byte(TypeResponse), 0})], wantR) {
		t.Fatal("interleaved payloads corrupted")
	}
}

func TestReassembleDuplicateLastFragmentFirst(t *testing.T) {
	// Worst-case reorder: the last fragment arrives first and twice; the
	// message must complete exactly when the final missing fragment lands.
	payload := make([]byte, 4000)
	dgs := Fragment(Header{Type: TypeRequest, ReqID: 8}, payload, 1000)
	r := NewReassembler(time.Second)
	order := []int{3, 3, 2, 1, 3, 0}
	for i, idx := range order {
		m, err := r.Ingest(dgs[idx], 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		last := i == len(order)-1
		if (m != nil) != last {
			t.Fatalf("step %d (frag %d): completed=%v, want %v", i, idx, m != nil, last)
		}
	}
}

func TestReassembleMismatchedPktCountDropsMessage(t *testing.T) {
	// A corrupted or spoofed fragment claiming a different total must not
	// poison the reassembly: the message is dropped, and a clean retry
	// reassembles from scratch.
	payload := make([]byte, 3000)
	dgs := Fragment(Header{Type: TypeRequest, ReqID: 21}, payload, 1000)
	bad := Fragment(Header{Type: TypeRequest, ReqID: 21}, make([]byte, 1500), 1000)
	r := NewReassembler(time.Second)
	if _, err := r.Ingest(dgs[0], 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Ingest(bad[0], 1, 0); err != ErrBadFragment {
		t.Fatalf("mismatched count err = %v, want ErrBadFragment", err)
	}
	if r.Pending() != 0 {
		t.Fatal("poisoned reassembly not dropped")
	}
	var msg *Msg
	for _, dg := range dgs {
		m, err := r.Ingest(dg, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			msg = m
		}
	}
	if msg == nil || len(msg.Payload) != len(payload) {
		t.Fatal("retry after poisoned reassembly failed")
	}
}

func TestGroupStampRoundTrip(t *testing.T) {
	dgs := Fragment(Header{Type: TypeRequest, ReqID: 5}, make([]byte, 3000), 1000)
	StampGroup(dgs, 6)
	for _, dg := range dgs {
		if GroupOf(dg) != 6 {
			t.Fatalf("GroupOf = %d after stamp", GroupOf(dg))
		}
	}
	r := NewReassembler(time.Second)
	var msg *Msg
	for _, dg := range dgs {
		m, err := r.Ingest(dg, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			msg = m
		}
	}
	if msg == nil || msg.Group != 6 {
		t.Fatalf("reassembled group = %v", msg)
	}
	if GroupOf([]byte{1, 2}) != GroupInvalid {
		t.Fatal("short packet group not invalid")
	}
}
