package r2p2

import (
	"encoding/binary"
	"testing"
	"time"

	"hovercraft/internal/wire"
)

func benchHeader() Header {
	return Header{
		Type:    TypeRequest,
		Policy:  PolicyReplicated,
		SrcPort: 7001,
		ReqID:   42,
	}
}

// BenchmarkHeaderMarshal is the raw 16-byte header encode into a
// caller-provided buffer: the floor for every datagram on the wire.
func BenchmarkHeaderMarshal(b *testing.B) {
	h := benchHeader()
	buf := make([]byte, 0, HeaderSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.Marshal(buf[:0])
	}
	if len(buf) != HeaderSize {
		b.Fatal("bad marshal")
	}
}

// BenchmarkFragmentSingleMTU is the single-MTU fast path: one small
// payload in, one datagram out.
func BenchmarkFragmentSingleMTU(b *testing.B) {
	h := benchHeader()
	payload := make([]byte, 24)
	b.ReportAllocs()
	var dgs [][]byte
	for i := 0; i < b.N; i++ {
		dgs = Fragment(h, payload, 0)
	}
	if len(dgs) != 1 {
		b.Fatal("expected one fragment")
	}
}

// BenchmarkFragmentMultiMTU covers the fragmentation path (8KB payload,
// six MTU-sized fragments).
func BenchmarkFragmentMultiMTU(b *testing.B) {
	h := benchHeader()
	payload := make([]byte, 8192)
	b.ReportAllocs()
	var dgs [][]byte
	for i := 0; i < b.N; i++ {
		dgs = Fragment(h, payload, 0)
	}
	if len(dgs) != (8192+MaxFragPayload-1)/MaxFragPayload {
		b.Fatal("bad fragment count")
	}
}

// BenchmarkPooledFragSingleMTU is the zero-allocation hot path the
// engines actually use: encode into pooled buffers, send (here: drop),
// release. Steady state must not touch the heap — CI guards 0 allocs/op
// via BENCH_hotpath.json, and TestSingleMTUFastPathZeroAlloc enforces it
// on every plain `go test`.
func BenchmarkPooledFragSingleMTU(b *testing.B) {
	h := benchHeader()
	payload := make([]byte, 24)
	var dgs []*wire.Buf
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dgs = AppendFragBufs(dgs[:0], h, payload, 0)
		wire.ReleaseAll(dgs)
	}
	if len(dgs) != 1 {
		b.Fatal("expected one fragment")
	}
}

// BenchmarkIngestSingleMTU is the receive-side fast path: one datagram
// in, one completed message out of the scratch Msg, no reassembly state.
func BenchmarkIngestSingleMTU(b *testing.B) {
	h := benchHeader()
	dg := Fragment(h, make([]byte, 24), 0)[0]
	r := NewReassembler(time.Millisecond)
	var m Msg
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		done, _, err := r.IngestInto(dg, 1, 0, &m)
		if err != nil || !done {
			b.Fatal("fast path did not complete")
		}
	}
}

// TestSingleMTUFastPathZeroAlloc pins the acceptance criterion: a
// single-MTU message costs zero heap allocations to encode into pooled
// buffers and zero to ingest.
func TestSingleMTUFastPathZeroAlloc(t *testing.T) {
	h := benchHeader()
	payload := make([]byte, 24)
	var dgs []*wire.Buf
	if n := testing.AllocsPerRun(200, func() {
		dgs = AppendFragBufs(dgs[:0], h, payload, 0)
		wire.ReleaseAll(dgs)
	}); n != 0 {
		t.Fatalf("pooled single-MTU encode allocates %.1f/op, want 0", n)
	}

	dg := Fragment(h, payload, 0)[0]
	r := NewReassembler(time.Millisecond)
	var m Msg
	if n := testing.AllocsPerRun(200, func() {
		if done, _, err := r.IngestInto(dg, 1, 0, &m); err != nil || !done {
			t.Fatal("fast path did not complete")
		}
	}); n != 0 {
		t.Fatalf("single-MTU ingest allocates %.1f/op, want 0", n)
	}
}

// BenchmarkReassembleMultiMTU ingests a fragmented message end to end:
// the per-fragment bookkeeping plus the final join.
func BenchmarkReassembleMultiMTU(b *testing.B) {
	h := benchHeader()
	payload := make([]byte, 8192)
	dgs := Fragment(h, payload, 0)
	r := NewReassembler(time.Millisecond)
	now := time.Duration(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += time.Microsecond
		var got *Msg
		for j, dg := range dgs {
			// Fresh identity per message, patched in place.
			binary.BigEndian.PutUint32(dg[8:12], uint32(i))
			m, err := r.Ingest(dg, 1, now)
			if err != nil {
				b.Fatal(err)
			}
			if m != nil {
				if j != len(dgs)-1 {
					b.Fatal("completed early")
				}
				got = m
			}
		}
		if got == nil || len(got.Payload) != len(payload) {
			b.Fatal("reassembly failed")
		}
	}
}
