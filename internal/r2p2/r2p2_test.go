package r2p2

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Type: TypeRaftReq, Policy: PolicyReplicatedRO, Flags: FlagFirst,
		SrcPort: 4242, ReqID: 0xDEADBEEF, PktID: 3, PktCount: 9,
	}
	b := h.Marshal(nil)
	if len(b) != HeaderSize {
		t.Fatalf("marshal len = %d", len(b))
	}
	var g Header
	if err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(tp, pol uint8, flags uint8, port uint16, req uint32, pid, pcnt uint16) bool {
		h := Header{
			Type:    MessageType(tp % uint8(numMessageTypes)),
			Policy:  Policy(pol % uint8(numPolicies)),
			Flags:   flags,
			SrcPort: port,
			ReqID:   req,
			PktID:   pid,
			PktCount: func() uint16 {
				if pcnt == 0 {
					return 1
				}
				return pcnt
			}(),
		}
		if h.PktID >= h.PktCount {
			h.PktID = h.PktCount - 1
		}
		var g Header
		if err := g.Unmarshal(h.Marshal(nil)); err != nil {
			return false
		}
		return g == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderUnmarshalErrors(t *testing.T) {
	var h Header
	if err := h.Unmarshal(make([]byte, 5)); err != ErrShortPacket {
		t.Fatalf("short: %v", err)
	}
	gh := Header{Type: TypeRequest, PktCount: 1}
	good := gh.Marshal(nil)
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if err := h.Unmarshal(bad); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99
	if err := h.Unmarshal(bad); err != ErrBadType {
		t.Fatalf("type: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[3] = 99
	if err := h.Unmarshal(bad); err != ErrBadPolicy {
		t.Fatalf("policy: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[14], bad[15] = 0, 0 // PktCount = 0
	if err := h.Unmarshal(bad); err != ErrBadFragment {
		t.Fatalf("fragment: %v", err)
	}
}

func TestMarshalHelper(t *testing.T) {
	h := Header{Type: TypeRequest, PktCount: 1}
	pre := []byte{1, 2, 3}
	out := h.Marshal(pre)
	if len(out) != 3+HeaderSize || out[0] != 1 {
		t.Fatalf("marshal append broken: %v", out)
	}
}

func TestFragmentSingle(t *testing.T) {
	payload := []byte("small")
	dgs := Fragment(Header{Type: TypeRequest, SrcPort: 1, ReqID: 2}, payload, 0)
	if len(dgs) != 1 {
		t.Fatalf("fragments = %d", len(dgs))
	}
	var h Header
	if err := h.Unmarshal(dgs[0]); err != nil {
		t.Fatal(err)
	}
	if h.PktCount != 1 || h.Flags != FlagFirst|FlagLast {
		t.Fatalf("hdr = %+v", h)
	}
}

func TestFragmentEmptyPayload(t *testing.T) {
	dgs := Fragment(Header{Type: TypeFeedback}, nil, 0)
	if len(dgs) != 1 || len(dgs[0]) != HeaderSize {
		t.Fatalf("empty payload fragmenting broken: %d frags", len(dgs))
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	payload := make([]byte, 6000) // ~5 fragments at MTU
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	dgs := Fragment(Header{Type: TypeResponse, SrcPort: 9, ReqID: 77}, payload, 0)
	if len(dgs) < 4 {
		t.Fatalf("fragments = %d, want >=4", len(dgs))
	}
	r := NewReassembler(time.Second)
	var msg *Msg
	for i, dg := range dgs {
		m, err := r.Ingest(dg, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(dgs)-1 && m != nil {
			t.Fatal("completed early")
		}
		if m != nil {
			msg = m
		}
	}
	if msg == nil {
		t.Fatal("never completed")
	}
	if !bytes.Equal(msg.Payload, payload) {
		t.Fatal("payload corrupted")
	}
	if msg.ID != (RequestID{SrcIP: 5, SrcPort: 9, ReqID: 77}) {
		t.Fatalf("id = %v", msg.ID)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestReassembleOutOfOrderAndDup(t *testing.T) {
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i)
	}
	dgs := Fragment(Header{Type: TypeRequest, ReqID: 1}, payload, 1000)
	r := NewReassembler(time.Second)
	order := []int{3, 0, 0, 2, 2, 1} // dup + reorder
	var msg *Msg
	for _, i := range order {
		m, err := r.Ingest(dgs[i], 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			msg = m
		}
	}
	if msg == nil || !bytes.Equal(msg.Payload, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassembleRoundTripProperty(t *testing.T) {
	f := func(data []byte, maxRaw uint8) bool {
		max := int(maxRaw%64) + 1
		dgs := Fragment(Header{Type: TypeRequest, ReqID: 42}, data, max)
		r := NewReassembler(time.Second)
		var msg *Msg
		for _, dg := range dgs {
			m, err := r.Ingest(dg, 3, 0)
			if err != nil {
				return false
			}
			if m != nil {
				msg = m
			}
		}
		return msg != nil && bytes.Equal(msg.Payload, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerGC(t *testing.T) {
	payload := make([]byte, 3000)
	dgs := Fragment(Header{Type: TypeRequest, ReqID: 5}, payload, 1000)
	r := NewReassembler(10 * time.Millisecond)
	if _, err := r.Ingest(dgs[0], 1, 0); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	if n := r.GC(5 * time.Millisecond); n != 0 {
		t.Fatalf("gc early = %d", n)
	}
	if n := r.GC(20 * time.Millisecond); n != 1 {
		t.Fatalf("gc = %d", n)
	}
	if r.Pending() != 0 {
		t.Fatal("pending after gc")
	}
}

func TestReassemblerDistinguishesTypes(t *testing.T) {
	// A request and response with the same (ip, port, reqid) must not be
	// mixed during reassembly.
	req := Fragment(Header{Type: TypeRequest, ReqID: 7, SrcPort: 1}, make([]byte, 2000), 1000)
	resp := Fragment(Header{Type: TypeResponse, ReqID: 7, SrcPort: 1}, make([]byte, 2000), 1000)
	r := NewReassembler(time.Second)
	m1, _ := r.Ingest(req[0], 1, 0)
	m2, _ := r.Ingest(resp[0], 1, 0)
	if m1 != nil || m2 != nil {
		t.Fatal("premature completion")
	}
	if r.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 distinct reassemblies", r.Pending())
	}
}

func TestWireBytes(t *testing.T) {
	if got := WireBytes(0); got != HeaderSize+FrameOverhead {
		t.Fatalf("empty = %d", got)
	}
	if got := WireBytes(24); got != 24+HeaderSize+FrameOverhead {
		t.Fatalf("24B = %d", got)
	}
	// 6000B payload: 5 fragments.
	frags := (6000 + MaxFragPayload - 1) / MaxFragPayload
	if got := WireBytes(6000); got != 6000+frags*(HeaderSize+FrameOverhead) {
		t.Fatalf("6000B = %d (frags=%d)", got, frags)
	}
}

func TestClientRequestIDsUnique(t *testing.T) {
	c := NewClient(10, 99)
	seen := map[RequestID]bool{}
	for i := 0; i < 1000; i++ {
		id, dgs := c.NewRequest(PolicyReplicated, []byte("x"))
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
		if len(dgs) != 1 {
			t.Fatalf("dgs = %d", len(dgs))
		}
	}
}

func TestResponseMatchesRequestID(t *testing.T) {
	c := NewClient(10, 99)
	id, _ := c.NewRequest(PolicyReplicatedRO, []byte("query"))
	// A different node (ip 22) replies.
	dgs := MakeResponse(id, []byte("answer"), 0)
	r := NewReassembler(time.Second)
	m, err := r.Ingest(dgs[0], 22, 0)
	if err != nil || m == nil {
		t.Fatalf("ingest: %v %v", m, err)
	}
	if m.Type != TypeResponse {
		t.Fatalf("type = %v", m.Type)
	}
	// Client-side matching is by (port, reqID) which must equal the
	// original request's.
	if m.ID.SrcPort != id.SrcPort || m.ID.ReqID != id.ReqID {
		t.Fatalf("response id %v does not match request %v", m.ID, id)
	}
	if string(m.Payload) != "answer" {
		t.Fatalf("payload = %q", m.Payload)
	}
}

func TestFeedbackAndNack(t *testing.T) {
	id := RequestID{SrcIP: 1, SrcPort: 2, ReqID: 3}
	r := NewReassembler(time.Second)
	m, err := r.Ingest(MakeFeedback(id), 7, 0)
	if err != nil || m == nil || m.Type != TypeFeedback {
		t.Fatalf("feedback: %v %v", m, err)
	}
	m, err = r.Ingest(MakeNack(id), 7, 0)
	if err != nil || m == nil || m.Type != TypeNack {
		t.Fatalf("nack: %v %v", m, err)
	}
	if m.ID.SrcPort != 2 || m.ID.ReqID != 3 {
		t.Fatalf("nack id = %v", m.ID)
	}
}

func TestPendingTracker(t *testing.T) {
	p := NewPending[string]()
	p.Add(1, "a", 100*time.Millisecond)
	p.Add(2, "b", 200*time.Millisecond)
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	v, ok := p.Take(1)
	if !ok || v != "a" {
		t.Fatalf("take = %q %v", v, ok)
	}
	if _, ok := p.Take(1); ok {
		t.Fatal("double take")
	}
	exp := p.Expire(150 * time.Millisecond)
	if len(exp) != 0 {
		t.Fatalf("expired early: %v", exp)
	}
	exp = p.Expire(250 * time.Millisecond)
	if len(exp) != 1 || exp[0] != "b" {
		t.Fatalf("expire = %v", exp)
	}
	if p.Len() != 0 {
		t.Fatal("tracker not empty")
	}
}

func TestStringers(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{TypeRequest.String(), "REQUEST"},
		{TypeNack.String(), "NACK"},
		{MessageType(200).String(), "TYPE(200)"},
		{PolicyReplicated.String(), "REPLICATED_REQ"},
		{PolicyReplicatedRO.String(), "REPLICATED_REQ_R"},
		{Policy(200).String(), "POLICY(200)"},
		{RequestID{1, 2, 3}.String(), "1:2/3"},
	} {
		if tc.got != tc.want {
			t.Errorf("got %q want %q", tc.got, tc.want)
		}
	}
}

func TestMsgIsReadOnly(t *testing.T) {
	m := Msg{Policy: PolicyReplicatedRO}
	if !m.IsReadOnly() {
		t.Fatal("RO not detected")
	}
	m.Policy = PolicyReplicated
	if m.IsReadOnly() {
		t.Fatal("RW misdetected")
	}
}
