package r2p2

import (
	"fmt"
	"time"

	"hovercraft/internal/wire"
)

// DefaultMTU is the Ethernet MTU assumed by the evaluation (paper §3.3).
const DefaultMTU = 1500

// FrameOverhead is the Ethernet+IPv4+UDP framing the network adds below
// R2P2 (14+20+8 plus FCS).
const FrameOverhead = 46

// MaxFragPayload is the largest R2P2 payload per datagram such that one
// fragment fits in a single MTU-sized frame.
const MaxFragPayload = DefaultMTU - FrameOverhead - HeaderSize

// fragCount returns how many fragments a payload needs.
func fragCount(payloadLen, maxPayload int) int {
	n := (payloadLen + maxPayload - 1) / maxPayload
	if n == 0 {
		n = 1
	}
	if n > 0xFFFF {
		panic(fmt.Sprintf("r2p2: message of %d bytes needs %d fragments (max 65535)", payloadLen, n))
	}
	return n
}

// fragHeader fills the per-fragment header fields of fragment i of n.
func fragHeader(h Header, i, n int) Header {
	h.PktID = uint16(i)
	h.PktCount = uint16(n)
	h.Flags = 0
	if i == 0 {
		h.Flags |= FlagFirst
	}
	if i == n-1 {
		h.Flags |= FlagLast
	}
	return h
}

// Fragment encodes a message as one or more datagrams, each at most
// maxPayload bytes of payload plus the R2P2 header. maxPayload <= 0 uses
// MaxFragPayload. The header's PktID/PktCount/Flags are filled per
// fragment; the other header fields are copied from h. All datagrams
// share one backing array (two allocations total, not one per fragment).
func Fragment(h Header, payload []byte, maxPayload int) [][]byte {
	if maxPayload <= 0 {
		maxPayload = MaxFragPayload
	}
	n := fragCount(len(payload), maxPayload)
	out := make([][]byte, 0, n)
	backing := make([]byte, 0, n*HeaderSize+len(payload))
	for i := 0; i < n; i++ {
		fh := fragHeader(h, i, n)
		lo := i * maxPayload
		hi := lo + maxPayload
		if hi > len(payload) {
			hi = len(payload)
		}
		start := len(backing)
		backing = fh.Marshal(backing)
		backing = append(backing, payload[lo:hi]...)
		out = append(out, backing[start:len(backing):len(backing)])
	}
	return out
}

// AppendFragBufs encodes a message like Fragment, but into pooled wire
// buffers appended to dst. Each returned buffer carries one reference
// owned by the caller; transports consume that reference when they send.
func AppendFragBufs(dst []*wire.Buf, h Header, payload []byte, maxPayload int) []*wire.Buf {
	if maxPayload <= 0 {
		maxPayload = MaxFragPayload
	}
	n := fragCount(len(payload), maxPayload)
	for i := 0; i < n; i++ {
		fh := fragHeader(h, i, n)
		lo := i * maxPayload
		hi := lo + maxPayload
		if hi > len(payload) {
			hi = len(payload)
		}
		b := wire.Get(HeaderSize + hi - lo)
		b.B = fh.Marshal(b.B)
		b.B = append(b.B, payload[lo:hi]...)
		dst = append(dst, b)
	}
	return dst
}

// WireBytes returns the total bytes on the wire (including framing) for a
// message with the given payload length, accounting for fragmentation.
// This is the quantity that hits NIC bandwidth limits.
func WireBytes(payloadLen int) int {
	frags := (payloadLen + MaxFragPayload - 1) / MaxFragPayload
	if frags == 0 {
		frags = 1
	}
	return payloadLen + frags*(HeaderSize+FrameOverhead)
}

// reasmKey identifies an in-progress reassembly. Type disambiguates a
// request and a response with the same RPC identity; Group disambiguates
// shard groups, whose engines draw from independent (port, req_id)
// spaces on the same host.
type reasmKey struct {
	id    RequestID
	t     MessageType
	group uint8
}

// reasmState accumulates one message by copying fragment payloads into a
// contiguous buffer at their stride offsets as they arrive. Copying on
// ingest (instead of retaining fragment references and joining at the
// end) means the reassembler never holds on to a datagram after Ingest
// returns — the property that lets callers reuse read buffers and the
// simulator recycle packet payloads.
type reasmState struct {
	buf      []byte // contiguous payload, sized stride*total up front
	received []bool
	stride   int    // payload bytes of every non-final fragment (0 = unknown)
	lastLen  int    // payload bytes of the final fragment (-1 = unseen)
	lastCopy []byte // final fragment arrived before stride was known
	have     int
	total    int
	policy   Policy
	deadline time.Duration
}

// Reassembler reconstructs messages from datagrams. It tolerates loss,
// duplication, and reordering of fragments; incomplete messages are
// discarded by GC after a timeout. Datagrams are never retained after
// Ingest returns. Not safe for concurrent use.
type Reassembler struct {
	// Timeout after which an incomplete message is dropped.
	Timeout time.Duration
	pending map[reasmKey]*reasmState
}

// NewReassembler returns a reassembler with the given GC timeout.
func NewReassembler(timeout time.Duration) *Reassembler {
	return &Reassembler{Timeout: timeout, pending: make(map[reasmKey]*reasmState)}
}

// Ingest consumes one datagram received from srcIP at virtual/wall time
// now. It returns the completed message when the datagram completes one,
// or nil. Errors indicate malformed packets (which are dropped).
func (r *Reassembler) Ingest(datagram []byte, srcIP uint32, now time.Duration) (*Msg, error) {
	m := &Msg{}
	done, _, err := r.IngestInto(datagram, srcIP, now, m)
	if !done {
		return nil, err
	}
	return m, nil
}

// IngestInto is the allocation-free form of Ingest: when the datagram
// completes a message it fills *m and returns done=true. owned reports
// whether m.Payload is backed by reassembler-allocated memory
// (multi-fragment messages) as opposed to aliasing the datagram itself
// (the single-fragment fast path). Callers that feed borrowed read
// buffers copy un-owned payloads of any message type they retain.
func (r *Reassembler) IngestInto(datagram []byte, srcIP uint32, now time.Duration, m *Msg) (done, owned bool, err error) {
	var h Header
	if err := h.Unmarshal(datagram); err != nil {
		return false, false, err
	}
	body := datagram[HeaderSize:]
	id := IDOf(&h, srcIP)
	if h.PktCount == 1 {
		// Fast path: single-fragment message.
		*m = Msg{Type: h.Type, Policy: h.Policy, Group: h.Group, ID: id, Payload: body}
		return true, false, nil
	}
	key := reasmKey{id: id, t: h.Type, group: h.Group}
	st, ok := r.pending[key]
	if !ok {
		st = &reasmState{
			received: make([]bool, h.PktCount),
			total:    int(h.PktCount),
			lastLen:  -1,
			policy:   h.Policy,
		}
		r.pending[key] = st
	}
	if int(h.PktCount) != st.total {
		// Mismatched fragment metadata: drop the whole message.
		delete(r.pending, key)
		return false, false, ErrBadFragment
	}
	st.deadline = now + r.Timeout
	if !st.received[h.PktID] {
		final := int(h.PktID) == st.total-1
		if !final {
			if st.stride == 0 {
				// First non-final fragment fixes the stride; every
				// fragment's offset is then known, so the whole payload
				// buffer is allocated once.
				st.stride = len(body)
				st.buf = make([]byte, st.stride*st.total)
				if st.lastCopy != nil {
					if len(st.lastCopy) > st.stride {
						delete(r.pending, key)
						return false, false, ErrBadFragment
					}
					copy(st.buf[st.stride*(st.total-1):], st.lastCopy)
					st.lastCopy = nil
				}
			} else if len(body) != st.stride {
				delete(r.pending, key)
				return false, false, ErrBadFragment
			}
			copy(st.buf[int(h.PktID)*st.stride:], body)
		} else {
			st.lastLen = len(body)
			switch {
			case st.stride == 0:
				// Final fragment before any full-size one: park a copy
				// until the stride is known.
				st.lastCopy = append([]byte(nil), body...)
			case len(body) > st.stride:
				delete(r.pending, key)
				return false, false, ErrBadFragment
			default:
				copy(st.buf[st.stride*(st.total-1):], body)
			}
		}
		st.received[h.PktID] = true
		st.have++
	}
	if st.have < st.total {
		return false, false, nil
	}
	delete(r.pending, key)
	*m = Msg{Type: h.Type, Policy: st.policy, Group: h.Group, ID: id,
		Payload: st.buf[:st.stride*(st.total-1)+st.lastLen]}
	return true, true, nil
}

// GC drops incomplete reassemblies whose deadline passed and returns how
// many were dropped.
func (r *Reassembler) GC(now time.Duration) int {
	dropped := 0
	for k, st := range r.pending {
		if now >= st.deadline {
			delete(r.pending, k)
			dropped++
		}
	}
	return dropped
}

// Pending returns the number of incomplete reassemblies.
func (r *Reassembler) Pending() int { return len(r.pending) }
