package r2p2

import (
	"fmt"
	"time"
)

// DefaultMTU is the Ethernet MTU assumed by the evaluation (paper §3.3).
const DefaultMTU = 1500

// FrameOverhead is the Ethernet+IPv4+UDP framing the network adds below
// R2P2 (14+20+8 plus FCS).
const FrameOverhead = 46

// MaxFragPayload is the largest R2P2 payload per datagram such that one
// fragment fits in a single MTU-sized frame.
const MaxFragPayload = DefaultMTU - FrameOverhead - HeaderSize

// Fragment encodes a message as one or more datagrams, each at most
// maxPayload bytes of payload plus the R2P2 header. maxPayload <= 0 uses
// MaxFragPayload. The header's PktID/PktCount/Flags are filled per
// fragment; the other header fields are copied from h.
func Fragment(h Header, payload []byte, maxPayload int) [][]byte {
	if maxPayload <= 0 {
		maxPayload = MaxFragPayload
	}
	n := (len(payload) + maxPayload - 1) / maxPayload
	if n == 0 {
		n = 1
	}
	if n > 0xFFFF {
		panic(fmt.Sprintf("r2p2: message of %d bytes needs %d fragments (max 65535)", len(payload), n))
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		fh := h
		fh.PktID = uint16(i)
		fh.PktCount = uint16(n)
		fh.Flags = 0
		if i == 0 {
			fh.Flags |= FlagFirst
		}
		if i == n-1 {
			fh.Flags |= FlagLast
		}
		lo := i * maxPayload
		hi := lo + maxPayload
		if hi > len(payload) {
			hi = len(payload)
		}
		dg := fh.Marshal(make([]byte, 0, HeaderSize+hi-lo))
		dg = append(dg, payload[lo:hi]...)
		out = append(out, dg)
	}
	return out
}

// WireBytes returns the total bytes on the wire (including framing) for a
// message with the given payload length, accounting for fragmentation.
// This is the quantity that hits NIC bandwidth limits.
func WireBytes(payloadLen int) int {
	frags := (payloadLen + MaxFragPayload - 1) / MaxFragPayload
	if frags == 0 {
		frags = 1
	}
	return payloadLen + frags*(HeaderSize+FrameOverhead)
}

// reasmKey identifies an in-progress reassembly. Type disambiguates a
// request and a response with the same RPC identity; Group disambiguates
// shard groups, whose engines draw from independent (port, req_id)
// spaces on the same host.
type reasmKey struct {
	id    RequestID
	t     MessageType
	group uint8
}

type reasmState struct {
	frags    [][]byte
	have     int
	total    int
	policy   Policy
	deadline time.Duration
}

// Reassembler reconstructs messages from datagrams. It tolerates loss,
// duplication, and reordering of fragments; incomplete messages are
// discarded by GC after a timeout. Not safe for concurrent use.
type Reassembler struct {
	// Timeout after which an incomplete message is dropped.
	Timeout time.Duration
	pending map[reasmKey]*reasmState
}

// NewReassembler returns a reassembler with the given GC timeout.
func NewReassembler(timeout time.Duration) *Reassembler {
	return &Reassembler{Timeout: timeout, pending: make(map[reasmKey]*reasmState)}
}

// Ingest consumes one datagram received from srcIP at virtual/wall time
// now. It returns the completed message when the datagram completes one,
// or nil. Errors indicate malformed packets (which are dropped).
func (r *Reassembler) Ingest(datagram []byte, srcIP uint32, now time.Duration) (*Msg, error) {
	var h Header
	if err := h.Unmarshal(datagram); err != nil {
		return nil, err
	}
	body := datagram[HeaderSize:]
	id := IDOf(&h, srcIP)
	if h.PktCount == 1 {
		// Fast path: single-fragment message.
		return &Msg{Type: h.Type, Policy: h.Policy, Group: h.Group, ID: id, Payload: body}, nil
	}
	key := reasmKey{id: id, t: h.Type, group: h.Group}
	st, ok := r.pending[key]
	if !ok {
		st = &reasmState{
			frags:  make([][]byte, h.PktCount),
			total:  int(h.PktCount),
			policy: h.Policy,
		}
		r.pending[key] = st
	}
	if int(h.PktCount) != st.total {
		// Mismatched fragment metadata: drop the whole message.
		delete(r.pending, key)
		return nil, ErrBadFragment
	}
	st.deadline = now + r.Timeout
	if st.frags[h.PktID] == nil {
		st.frags[h.PktID] = body
		st.have++
	}
	if st.have < st.total {
		return nil, nil
	}
	delete(r.pending, key)
	size := 0
	for _, f := range st.frags {
		size += len(f)
	}
	payload := make([]byte, 0, size)
	for _, f := range st.frags {
		payload = append(payload, f...)
	}
	return &Msg{Type: h.Type, Policy: st.policy, Group: h.Group, ID: id, Payload: payload}, nil
}

// GC drops incomplete reassemblies whose deadline passed and returns how
// many were dropped.
func (r *Reassembler) GC(now time.Duration) int {
	dropped := 0
	for k, st := range r.pending {
		if now >= st.deadline {
			delete(r.pending, k)
			dropped++
		}
	}
	return dropped
}

// Pending returns the number of incomplete reassemblies.
func (r *Reassembler) Pending() int { return len(r.pending) }
