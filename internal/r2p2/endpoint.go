package r2p2

import (
	"encoding/binary"
	"sort"
	"time"

	"hovercraft/internal/wire"
)

// MakeMsg builds the datagrams of an arbitrary R2P2 message. port and
// reqID identify the message within the sender's namespace (for
// request/response matching and reassembly); maxPayload <= 0 means
// MaxFragPayload.
func MakeMsg(t MessageType, policy Policy, port uint16, reqID uint32, payload []byte, maxPayload int) [][]byte {
	h := Header{Type: t, Policy: policy, SrcPort: port, ReqID: reqID}
	return Fragment(h, payload, maxPayload)
}

// AppendMsgBufs is MakeMsg into pooled wire buffers (see AppendFragBufs
// for the reference contract).
func AppendMsgBufs(dst []*wire.Buf, t MessageType, policy Policy, port uint16, reqID uint32, payload []byte, maxPayload int) []*wire.Buf {
	h := Header{Type: t, Policy: policy, SrcPort: port, ReqID: reqID}
	return AppendFragBufs(dst, h, payload, maxPayload)
}

// MakeResponse builds the datagrams of a response to the request
// identified by id. The response carries the *request's* (port, req_id),
// which is how the client matches it even when the replier is not the
// host the request was sent to — the mechanism behind HovercRaft's reply
// load balancing.
func MakeResponse(id RequestID, payload []byte, maxPayload int) [][]byte {
	h := Header{Type: TypeResponse, SrcPort: id.SrcPort, ReqID: id.ReqID}
	return Fragment(h, payload, maxPayload)
}

// AppendResponseBufs is MakeResponse into pooled wire buffers.
func AppendResponseBufs(dst []*wire.Buf, id RequestID, payload []byte, maxPayload int) []*wire.Buf {
	h := Header{Type: TypeResponse, SrcPort: id.SrcPort, ReqID: id.ReqID}
	return AppendFragBufs(dst, h, payload, maxPayload)
}

// MakeFeedback builds the single-datagram FEEDBACK message for the given
// request, sent to the flow-control middlebox when a reply is emitted.
func MakeFeedback(id RequestID) []byte {
	h := Header{Type: TypeFeedback, SrcPort: id.SrcPort, ReqID: id.ReqID, PktCount: 1, Flags: FlagFirst | FlagLast}
	h.PktID = 0
	return h.Marshal(nil)
}

// FeedbackRecordSize is the payload footprint of one extra request in a
// coalesced FEEDBACK datagram: (src_port, req_id).
const FeedbackRecordSize = 6

// maxFeedbackIDs caps how many request IDs one FEEDBACK datagram covers
// (header slot + as many records as fit a single-MTU payload).
const maxFeedbackIDs = 1 + MaxFragPayload/FeedbackRecordSize

// AppendFeedbackBufs builds coalesced FEEDBACK datagrams covering every
// id, into pooled wire buffers. The header carries ids[0] the way a
// single feedback always has; each further id rides as a
// FeedbackRecordSize payload record, so one datagram releases many
// middlebox slots. Overflow past a single MTU spills into additional
// datagrams (at maxFeedbackIDs ≈ 240 per datagram the spill is
// essentially theoretical).
func AppendFeedbackBufs(dst []*wire.Buf, ids []RequestID) []*wire.Buf {
	for len(ids) > 0 {
		n := len(ids)
		if n > maxFeedbackIDs {
			n = maxFeedbackIDs
		}
		h := Header{Type: TypeFeedback, SrcPort: ids[0].SrcPort, ReqID: ids[0].ReqID,
			PktCount: 1, Flags: FlagFirst | FlagLast}
		b := wire.Get(HeaderSize + (n-1)*FeedbackRecordSize)
		b.B = h.Marshal(b.B)
		for _, id := range ids[1:n] {
			var rec [FeedbackRecordSize]byte
			binary.BigEndian.PutUint16(rec[0:2], id.SrcPort)
			binary.BigEndian.PutUint32(rec[2:6], id.ReqID)
			b.B = append(b.B, rec[:]...)
		}
		dst = append(dst, b)
		ids = ids[n:]
	}
	return dst
}

// FeedbackRecordCount returns how many extra request records a FEEDBACK
// payload carries (beyond the one in the header).
func FeedbackRecordCount(payload []byte) int { return len(payload) / FeedbackRecordSize }

// FeedbackRecordAt decodes extra record i of a coalesced FEEDBACK payload.
func FeedbackRecordAt(payload []byte, i int) (port uint16, req uint32) {
	rec := payload[i*FeedbackRecordSize:]
	return binary.BigEndian.Uint16(rec[0:2]), binary.BigEndian.Uint32(rec[2:6])
}

// MakeNack builds the single-datagram NACK for the given request, sent by
// the middlebox to a client whose request was shed.
func MakeNack(id RequestID) []byte {
	h := Header{Type: TypeNack, SrcPort: id.SrcPort, ReqID: id.ReqID, PktCount: 1, Flags: FlagFirst | FlagLast}
	return h.Marshal(nil)
}

// MakeNackBuf is MakeNack into a pooled wire buffer.
func MakeNackBuf(id RequestID) *wire.Buf {
	h := Header{Type: TypeNack, SrcPort: id.SrcPort, ReqID: id.ReqID, PktCount: 1, Flags: FlagFirst | FlagLast}
	b := wire.Get(HeaderSize)
	b.B = h.Marshal(b.B)
	return b
}

// RetryAfterUnit is the quantum of the NACK retry-after hint: the hint
// byte counts these units, so one byte spans 64µs .. ~16.3ms — the
// useful backoff range between "one service time" and "wait out a
// leader election".
const RetryAfterUnit = 64 * time.Microsecond

// EncodeRetryAfter quantizes a backoff hint into the NACK payload byte
// (rounding up, saturating at 255). Zero means "no hint".
func EncodeRetryAfter(d time.Duration) byte {
	if d <= 0 {
		return 0
	}
	u := (d + RetryAfterUnit - 1) / RetryAfterUnit
	if u > 255 {
		u = 255
	}
	return byte(u)
}

// DecodeRetryAfter expands a hint byte back into a duration; 0 → 0.
func DecodeRetryAfter(b byte) time.Duration {
	return time.Duration(b) * RetryAfterUnit
}

// MakeNackHint builds a NACK carrying a one-byte retry-after hint as
// payload. A zero hint degrades to the classic empty NACK, and old
// receivers that ignore the payload parse a hinted NACK unchanged — the
// header layout is identical, so the extension is wire-compatible in
// both directions.
func MakeNackHint(id RequestID, hint byte) []byte {
	if hint == 0 {
		return MakeNack(id)
	}
	h := Header{Type: TypeNack, SrcPort: id.SrcPort, ReqID: id.ReqID, PktCount: 1, Flags: FlagFirst | FlagLast}
	return append(h.Marshal(nil), hint)
}

// MakeNackHintBuf is MakeNackHint into a pooled wire buffer.
func MakeNackHintBuf(id RequestID, hint byte) *wire.Buf {
	h := Header{Type: TypeNack, SrcPort: id.SrcPort, ReqID: id.ReqID, PktCount: 1, Flags: FlagFirst | FlagLast}
	n := HeaderSize
	if hint != 0 {
		n++
	}
	b := wire.Get(n)
	b.B = h.Marshal(b.B)
	if hint != 0 {
		b.B = append(b.B, hint)
	}
	return b
}

// NackRetryAfter extracts the retry-after hint from a NACK datagram's
// payload (the bytes after the header). Empty payload — the pre-hint
// wire format — yields zero, "no hint".
func NackRetryAfter(payload []byte) time.Duration {
	if len(payload) == 0 {
		return 0
	}
	return DecodeRetryAfter(payload[0])
}

// Client allocates request identifiers and builds request datagrams for
// one (ip, port) client endpoint. Not safe for concurrent use.
type Client struct {
	IP   uint32
	Port uint16
	// MaxPayload caps per-fragment payload; 0 means MaxFragPayload.
	MaxPayload int

	nextReq uint32
}

// NewClient returns a client endpoint.
func NewClient(ip uint32, port uint16) *Client {
	return &Client{IP: ip, Port: port}
}

// NewRequest builds a request and returns its identity and datagrams.
func (c *Client) NewRequest(policy Policy, payload []byte) (RequestID, [][]byte) {
	c.nextReq++
	id := RequestID{SrcIP: c.IP, SrcPort: c.Port, ReqID: c.nextReq}
	dgs := MakeMsg(TypeRequest, policy, c.Port, c.nextReq, payload, c.MaxPayload)
	return id, dgs
}

// Pending tracks outstanding requests with attached caller state, with
// timeout-based expiry. It is generic so the load generator can attach
// send timestamps and the UDP client can attach completion channels.
type Pending[T any] struct {
	entries map[uint32]pendEntry[T]
}

type pendEntry[T any] struct {
	val      T
	deadline time.Duration
}

// NewPending returns an empty tracker.
func NewPending[T any]() *Pending[T] {
	return &Pending[T]{entries: make(map[uint32]pendEntry[T])}
}

// Add registers an outstanding request by its ReqID.
func (p *Pending[T]) Add(reqID uint32, val T, deadline time.Duration) {
	p.entries[reqID] = pendEntry[T]{val: val, deadline: deadline}
}

// Take removes and returns the entry for reqID.
func (p *Pending[T]) Take(reqID uint32) (T, bool) {
	e, ok := p.entries[reqID]
	if ok {
		delete(p.entries, reqID)
	}
	return e.val, ok
}

// Len returns the number of outstanding requests.
func (p *Pending[T]) Len() int { return len(p.entries) }

// Expire removes and returns all entries whose deadline has passed, in
// ascending ReqID order. The order matters: expiry can trigger
// retransmissions, and those sends must be deterministic for the
// simulator's same-seed replay guarantee — never map iteration order.
func (p *Pending[T]) Expire(now time.Duration) []T {
	var ids []uint32
	for id, e := range p.entries {
		if now >= e.deadline {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]T, 0, len(ids))
	for _, id := range ids {
		out = append(out, p.entries[id].val)
		delete(p.entries, id)
	}
	return out
}
