// Package app defines the application-side contracts of HovercRaft and
// the synthetic microbenchmark service used throughout the paper's
// evaluation (§7): a service with configurable CPU service time, request
// size, and reply size, letting experiments exercise CPU and I/O
// bottlenecks independently.
package app

import (
	"encoding/binary"
	"time"
)

// Service is a deterministic request/response application. HovercRaft
// makes any such service fault-tolerant with no code changes: Execute is
// invoked with totally ordered requests on every replica (read-only
// requests only on the designated replier).
//
// Determinism requirement: for the same sequence of non-read-only
// payloads, every replica must produce the same state (replies may be
// consumed by different clients but must also be deterministic).
type Service interface {
	// Execute runs one request and returns the reply payload.
	Execute(payload []byte, readOnly bool) []byte
}

// CostModel optionally reports the CPU cost of a request so the
// discrete-event simulator can charge the application thread. Real
// deployments ignore it (the real CPU does the charging).
type CostModel interface {
	// Cost returns the service time of executing payload.
	Cost(payload []byte, readOnly bool) time.Duration
}

// synthHeader is the layout of a synthetic request: the client encodes
// the service time and reply size it wants; the body is padding to reach
// the experiment's request size.
const synthHeader = 12

// SynthRequest builds a synthetic request payload: execute for svcTime,
// reply with replySize bytes, total request payload exactly reqSize bytes
// (minimum synthHeader).
func SynthRequest(svcTime time.Duration, replySize, reqSize int) []byte {
	if reqSize < synthHeader {
		reqSize = synthHeader
	}
	p := make([]byte, reqSize)
	binary.BigEndian.PutUint64(p[0:8], uint64(svcTime))
	binary.BigEndian.PutUint32(p[8:12], uint32(replySize))
	return p
}

// SynthService is the paper's synthetic service: it "computes" for the
// requested service time (charged by the simulator via the CostModel)
// and produces a reply of the requested size.
type SynthService struct {
	// Executed counts operations run on this replica.
	Executed uint64
	// zero-filled reply buffer reused across calls.
	reply []byte
}

var _ Service = (*SynthService)(nil)
var _ CostModel = (*SynthService)(nil)

// Execute implements Service.
func (s *SynthService) Execute(payload []byte, readOnly bool) []byte {
	s.Executed++
	size := 8
	if len(payload) >= synthHeader {
		size = int(binary.BigEndian.Uint32(payload[8:12]))
	}
	if size < 1 {
		size = 1
	}
	if cap(s.reply) < size {
		s.reply = make([]byte, size)
	}
	return s.reply[:size]
}

// Cost implements CostModel.
func (s *SynthService) Cost(payload []byte, readOnly bool) time.Duration {
	if len(payload) < synthHeader {
		return 0
	}
	return time.Duration(binary.BigEndian.Uint64(payload[0:8]))
}

// FixedCost wraps any service with a constant service time for the
// simulator.
type FixedCost struct {
	Service
	PerOp time.Duration
}

// Cost implements CostModel.
func (f FixedCost) Cost(payload []byte, readOnly bool) time.Duration { return f.PerOp }
