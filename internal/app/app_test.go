package app

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSynthRequestRoundTrip(t *testing.T) {
	p := SynthRequest(5*time.Microsecond, 100, 64)
	if len(p) != 64 {
		t.Fatalf("len = %d", len(p))
	}
	s := &SynthService{}
	if got := s.Cost(p, false); got != 5*time.Microsecond {
		t.Fatalf("cost = %v", got)
	}
	reply := s.Execute(p, false)
	if len(reply) != 100 {
		t.Fatalf("reply = %d", len(reply))
	}
	if s.Executed != 1 {
		t.Fatalf("executed = %d", s.Executed)
	}
}

func TestSynthRequestMinimumSize(t *testing.T) {
	p := SynthRequest(time.Microsecond, 8, 0)
	if len(p) != synthHeader {
		t.Fatalf("len = %d, want header minimum", len(p))
	}
}

func TestSynthServiceDegenerateInputs(t *testing.T) {
	s := &SynthService{}
	if got := s.Execute(nil, false); len(got) != 8 {
		t.Fatalf("nil payload reply = %d", len(got))
	}
	if got := s.Cost(nil, false); got != 0 {
		t.Fatalf("nil payload cost = %v", got)
	}
	// Zero reply size clamps to 1.
	p := SynthRequest(0, 0, 24)
	if got := s.Execute(p, true); len(got) != 1 {
		t.Fatalf("zero reply size = %d", len(got))
	}
}

func TestSynthServiceProperty(t *testing.T) {
	f := func(svcUs uint16, replySize uint16, reqSize uint16) bool {
		svc := time.Duration(svcUs) * time.Microsecond
		p := SynthRequest(svc, int(replySize), int(reqSize))
		s := &SynthService{}
		if s.Cost(p, false) != svc {
			return false
		}
		want := int(replySize)
		if want < 1 {
			want = 1
		}
		return len(s.Execute(p, false)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedCost(t *testing.T) {
	fc := FixedCost{Service: &SynthService{}, PerOp: 7 * time.Microsecond}
	if fc.Cost([]byte("anything"), true) != 7*time.Microsecond {
		t.Fatal("fixed cost not fixed")
	}
	if fc.Execute(SynthRequest(0, 4, 24), false) == nil {
		t.Fatal("embedded service not reachable")
	}
}
