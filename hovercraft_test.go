package hovercraft_test

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hovercraft"
)

// register is a linearizable register for public-API testing:
// "w:<v>" writes, "r" reads.
type register struct {
	mu sync.Mutex
	v  uint64
}

func (r *register) Apply(cmd []byte, readOnly bool) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(cmd) > 2 && cmd[0] == 'w' && !readOnly {
		r.v = binary.BigEndian.Uint64(cmd[2:])
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, r.v)
	return out
}

func freeUDP(t *testing.T) string {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return c.LocalAddr().String()
}

// freeUDPRange finds a base address whose ports base..base+n-1 are all
// free, as sharded nodes bind one port per shard at fixed offsets.
func freeUDPRange(t *testing.T, n int) string {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		base := freeUDP(t)
		host, portStr, err := net.SplitHostPort(base)
		if err != nil {
			t.Fatal(err)
		}
		port, err := net.LookupPort("udp", portStr)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		var held []*net.UDPConn
		for s := 0; s < n; s++ {
			c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.ParseIP(host), Port: port + s})
			if err != nil {
				ok = false
				break
			}
			held = append(held, c)
		}
		for _, c := range held {
			c.Close()
		}
		if ok {
			return base
		}
	}
	t.Fatal("no consecutive free UDP port range found")
	return ""
}

func startPublicCluster(t *testing.T, n int) ([]*hovercraft.Node, []string) {
	t.Helper()
	peers := make(map[uint32]string, n)
	var addrs []string
	for id := uint32(1); id <= uint32(n); id++ {
		a := freeUDP(t)
		peers[id] = a
		addrs = append(addrs, a)
	}
	var nodes []*hovercraft.Node
	for id := range peers {
		node, err := hovercraft.Start(hovercraft.Config{
			ID: id, Peers: peers,
			TickInterval:   2 * time.Millisecond,
			ElectionTicks:  20,
			HeartbeatTicks: 4,
		}, &register{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
	}
	nodes[0].Campaign()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, nd := range nodes {
			if nd.IsLeader() {
				return nodes, addrs
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader")
	return nil, nil
}

func TestPublicAPIEndToEnd(t *testing.T) {
	nodes, addrs := startPublicCluster(t, 3)
	cl, err := hovercraft.Dial(addrs, hovercraft.ClientOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	w := make([]byte, 10)
	w[0], w[1] = 'w', ':'
	for i := uint64(1); i <= 10; i++ {
		binary.BigEndian.PutUint64(w[2:], i*i)
		got, err := cl.Call(w, false)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if binary.BigEndian.Uint64(got) != i*i {
			t.Fatalf("write reply = %d", binary.BigEndian.Uint64(got))
		}
		// Linearizability spot check: a read after an acknowledged
		// write must observe it.
		got, err = cl.Call([]byte("r"), true)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if binary.BigEndian.Uint64(got) != i*i {
			t.Fatalf("stale read: %d, want %d", binary.BigEndian.Uint64(got), i*i)
		}
	}

	// Status is coherent.
	var leaders int
	for _, nd := range nodes {
		st := nd.Status()
		if st.Leader == 0 {
			t.Fatalf("node without leader: %+v", st)
		}
		if nd.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d", leaders)
	}
}

func TestPublicAPIFuncAdapter(t *testing.T) {
	calls := 0
	sm := hovercraft.Func(func(cmd []byte, ro bool) []byte {
		calls++
		return append([]byte("echo:"), cmd...)
	})
	if got := sm.Apply([]byte("x"), false); string(got) != "echo:x" {
		t.Fatalf("func adapter = %q", got)
	}
	if calls != 1 {
		t.Fatal("not called")
	}
}

func TestPublicAPISharded(t *testing.T) {
	const shards = 2
	// Sharded nodes bind port+s for every shard, so each peer needs a
	// run of consecutive free ports, not just one.
	peers := make(map[uint32]string, 3)
	var addrs []string
	for id := uint32(1); id <= 3; id++ {
		base := freeUDPRange(t, shards)
		peers[id] = base
		addrs = append(addrs, base)
	}
	var nodes []*hovercraft.Node
	for id := range peers {
		node, err := hovercraft.StartSharded(hovercraft.Config{
			ID: id, Peers: peers, Shards: shards,
			TickInterval:   2 * time.Millisecond,
			ElectionTicks:  20,
			HeartbeatTicks: 4,
		}, hovercraft.FactoryFunc(func(int) hovercraft.StateMachine { return &register{} }))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		if node.Shards() != shards {
			t.Fatalf("node serves %d shards, want %d", node.Shards(), shards)
		}
		nodes = append(nodes, node)
	}
	// Spread bootstrap leaderships round-robin: node index s%N campaigns
	// shard s.
	for s := 0; s < shards; s++ {
		nodes[s%len(nodes)].CampaignShard(s)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s := 0; s < shards; s++ {
		for {
			var led bool
			for _, nd := range nodes {
				if nd.IsShardLeader(s) {
					led = true
				}
			}
			if led {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d: no leader", s)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	cl, err := hovercraft.DialSharded(addrs, shards, hovercraft.ClientOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Shards() != shards {
		t.Fatalf("client routes %d shards, want %d", cl.Shards(), shards)
	}

	// Each key's writes land on one group; a read of the same key must
	// observe the latest acknowledged write regardless of which shard
	// owns it.
	seen := make(map[int]bool)
	w := make([]byte, 10)
	w[0], w[1] = 'w', ':'
	for i := uint64(1); i <= 8; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		seen[cl.ShardFor(key)] = true
		binary.BigEndian.PutUint64(w[2:], i*7)
		if _, err := cl.CallKey(key, w, false); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := cl.CallKey(key, []byte("r"), true)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if binary.BigEndian.Uint64(got) != i*7 {
			t.Fatalf("stale read: %d, want %d", binary.BigEndian.Uint64(got), i*7)
		}
	}
	if len(seen) != shards {
		t.Fatalf("keys routed to %d of %d shards", len(seen), shards)
	}
	// Per-shard status is coherent and shard-0 compat methods still work.
	for s := 0; s < shards; s++ {
		var leaders int
		for _, nd := range nodes {
			if nd.ShardStatus(s).Leader == 0 {
				t.Fatalf("shard %d: node without leader", s)
			}
			if nd.IsShardLeader(s) {
				leaders++
			}
		}
		if leaders != 1 {
			t.Fatalf("shard %d: leaders = %d", s, leaders)
		}
	}
	for _, nd := range nodes {
		if nd.Status() != nd.ShardStatus(0) {
			t.Fatal("Status() is not shard 0's status")
		}
	}
}

func TestPublicAPIShardsRequireFactory(t *testing.T) {
	_, err := hovercraft.Start(hovercraft.Config{
		ID: 1, Peers: map[uint32]string{1: "127.0.0.1:0"}, Shards: 2,
	}, &register{})
	if err == nil {
		t.Fatal("Start accepted Shards > 1")
	}
}

func TestPublicAPIConcurrentClients(t *testing.T) {
	_, addrs := startPublicCluster(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := hovercraft.Dial(addrs, hovercraft.ClientOptions{Timeout: time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			w := make([]byte, 10)
			w[0], w[1] = 'w', ':'
			for i := 0; i < 10; i++ {
				binary.BigEndian.PutUint64(w[2:], uint64(c*100+i))
				if _, err := cl.Call(w, false); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
