package hovercraft_test

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hovercraft"
)

// register is a linearizable register for public-API testing:
// "w:<v>" writes, "r" reads.
type register struct {
	mu sync.Mutex
	v  uint64
}

func (r *register) Apply(cmd []byte, readOnly bool) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(cmd) > 2 && cmd[0] == 'w' && !readOnly {
		r.v = binary.BigEndian.Uint64(cmd[2:])
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, r.v)
	return out
}

func freeUDP(t *testing.T) string {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return c.LocalAddr().String()
}

func startPublicCluster(t *testing.T, n int) ([]*hovercraft.Node, []string) {
	t.Helper()
	peers := make(map[uint32]string, n)
	var addrs []string
	for id := uint32(1); id <= uint32(n); id++ {
		a := freeUDP(t)
		peers[id] = a
		addrs = append(addrs, a)
	}
	var nodes []*hovercraft.Node
	for id := range peers {
		node, err := hovercraft.Start(hovercraft.Config{
			ID: id, Peers: peers,
			TickInterval:   2 * time.Millisecond,
			ElectionTicks:  20,
			HeartbeatTicks: 4,
		}, &register{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
	}
	nodes[0].Campaign()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, nd := range nodes {
			if nd.IsLeader() {
				return nodes, addrs
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader")
	return nil, nil
}

func TestPublicAPIEndToEnd(t *testing.T) {
	nodes, addrs := startPublicCluster(t, 3)
	cl, err := hovercraft.Dial(addrs, hovercraft.ClientOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	w := make([]byte, 10)
	w[0], w[1] = 'w', ':'
	for i := uint64(1); i <= 10; i++ {
		binary.BigEndian.PutUint64(w[2:], i*i)
		got, err := cl.Call(w, false)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if binary.BigEndian.Uint64(got) != i*i {
			t.Fatalf("write reply = %d", binary.BigEndian.Uint64(got))
		}
		// Linearizability spot check: a read after an acknowledged
		// write must observe it.
		got, err = cl.Call([]byte("r"), true)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if binary.BigEndian.Uint64(got) != i*i {
			t.Fatalf("stale read: %d, want %d", binary.BigEndian.Uint64(got), i*i)
		}
	}

	// Status is coherent.
	var leaders int
	for _, nd := range nodes {
		st := nd.Status()
		if st.Leader == 0 {
			t.Fatalf("node without leader: %+v", st)
		}
		if nd.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d", leaders)
	}
}

func TestPublicAPIFuncAdapter(t *testing.T) {
	calls := 0
	sm := hovercraft.Func(func(cmd []byte, ro bool) []byte {
		calls++
		return append([]byte("echo:"), cmd...)
	})
	if got := sm.Apply([]byte("x"), false); string(got) != "echo:x" {
		t.Fatalf("func adapter = %q", got)
	}
	if calls != 1 {
		t.Fatal("not called")
	}
}

func TestPublicAPIConcurrentClients(t *testing.T) {
	_, addrs := startPublicCluster(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := hovercraft.Dial(addrs, hovercraft.ClientOptions{Timeout: time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			w := make([]byte, 10)
			w[0], w[1] = 'w', ':'
			for i := 0; i < 10; i++ {
				binary.BigEndian.PutUint64(w[2:], uint64(c*100+i))
				if _, err := cl.Call(w, false); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
