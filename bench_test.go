// Macro-benchmarks regenerating the paper's evaluation (one per table and
// figure, reduced sweeps). Each benchmark runs the corresponding harness
// experiment inside the deterministic simulator and reports the headline
// metrics; `cmd/hoverbench` runs the same experiments at full scale.
//
//	go test -bench=. -benchmem
package hovercraft_test

import (
	"strings"
	"testing"
	"time"

	"hovercraft/internal/core"
	"hovercraft/internal/harness"
	"hovercraft/internal/loadgen"
	"hovercraft/internal/obs"
	"hovercraft/internal/simcluster"
	"hovercraft/internal/simnet"
)

// benchScale keeps individual benchmarks in the seconds range.
func benchScale() harness.Scale {
	return harness.Scale{
		Warmup:   5 * time.Millisecond,
		Duration: 25 * time.Millisecond,
		Points:   3,
		Seed:     42,
	}
}

// reportCurves turns max-under-SLO values into benchmark metrics.
// Metric units must not contain whitespace, so curve labels are
// underscored ("HovercRaft++ N=3" → "HovercRaft++_N=3_kRPS_SLO").
func reportCurves(b *testing.B, rep *harness.Report) {
	b.Helper()
	for _, c := range rep.Curves {
		label := strings.ReplaceAll(c.Label, " ", "_")
		b.ReportMetric(c.MaxUnderSLO(harness.SLO), label+"_kRPS_SLO")
	}
}

func BenchmarkTable1MessageComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := harness.Table1(benchScale())
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) != 3 {
			b.Fatal("table1 incomplete")
		}
	}
}

func BenchmarkFig7BaselineLatencyThroughput(b *testing.B) {
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		rep = harness.Fig7(benchScale())
	}
	reportCurves(b, rep)
}

func BenchmarkFig8RequestSizeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := harness.Fig8(benchScale())
		if len(rep.Tables[0].Rows) != 4 {
			b.Fatal("fig8 incomplete")
		}
	}
}

func BenchmarkFig9ClusterSizeScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := harness.Fig9(benchScale())
		if len(rep.Tables[0].Rows) != 3 {
			b.Fatal("fig9 incomplete")
		}
	}
}

func BenchmarkFig10ReplyLoadBalancing(b *testing.B) {
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		rep = harness.Fig10(benchScale())
	}
	reportCurves(b, rep)
}

func BenchmarkFig11JBSQvsRandom(b *testing.B) {
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		rep = harness.Fig11(benchScale())
	}
	reportCurves(b, rep)
}

func BenchmarkFig12LeaderFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		rep := harness.Fig12(sc)
		if len(rep.Series) != 2 {
			b.Fatal("fig12 series missing")
		}
	}
}

func BenchmarkFig13YCSBERedis(b *testing.B) {
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		rep = harness.Fig13(benchScale())
	}
	reportCurves(b, rep)
}

// BenchmarkAblationBatchInterval quantifies the AppendEntries batching
// design choice (DESIGN.md §4): smaller tick intervals reduce latency but
// raise the leader's packet rate (messages per request).
func BenchmarkAblationBatchInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tick := range []time.Duration{5 * time.Microsecond, 10 * time.Microsecond, 40 * time.Microsecond} {
			cl := simcluster.New(simcluster.Options{
				Setup: simcluster.SetupHovercraft, Nodes: 3, Seed: 42,
				TickInterval: tick,
			})
			client := loadgen.NewClient(cl.Net, "c", defaultClientHost(), loadgen.ClientConfig{
				Rate: 300_000, Warmup: 5 * time.Millisecond, Duration: 20 * time.Millisecond,
				Timeout: 20 * time.Millisecond,
				Workload: &loadgen.Synthetic{
					ServiceTime: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8,
				},
				Target: cl.ServiceAddr, Port: 1000,
			})
			cl.Start()
			client.Start()
			cl.Run(50 * time.Millisecond)
			res := client.Result()
			b.ReportMetric(float64(res.Latency.P99.Microseconds()),
				"p99us_tick"+tick.String())
		}
	}
}

func defaultClientHost() simnet.HostConfig { return simnet.DefaultHostConfig() }

// BenchmarkAblationBoundB quantifies the bounded-queue depth (§3.4):
// larger B improves load balancing freedom, smaller B bounds reply loss.
func BenchmarkAblationBoundB(b *testing.B) {
	wl := harness.SyntheticSpec{
		Service: loadgen.PaperBimodal(10 * time.Microsecond), ReqSize: 24, ReadFrac: 0.75,
	}
	for i := 0; i < b.N; i++ {
		for _, bound := range []int{4, 32, 256} {
			sys := harness.HovercraftPP(3)
			sys.DisableReplyLB = false
			sys.Bound = bound
			sys.Policy = core.PolicyJBSQ
			res := harness.RunPoint(sys, wl, 150_000, harness.RunConfig{
				Seed: 42, Warmup: 5 * time.Millisecond,
				Duration: 25 * time.Millisecond, Clients: 2,
			})
			b.ReportMetric(float64(res.Point.P99.Microseconds()),
				"p99us_B"+itoa(bound))
		}
	}
}

// BenchmarkTracingDisabled / BenchmarkTracingEnabled guard the
// observability layer's overhead claim: with tracing off (nil *Obs) the
// hooks are single pointer tests and the run must stay within ~5% of the
// pre-instrumentation cost; with tracing on, the extra cost buys the full
// per-request decomposition. Compare:
//
//	go test -bench 'BenchmarkTracing' -benchtime 3x
func BenchmarkTracingDisabled(b *testing.B) {
	benchTracing(b, false)
}

func BenchmarkTracingEnabled(b *testing.B) {
	benchTracing(b, true)
}

func benchTracing(b *testing.B, traced bool) {
	wl := harness.SyntheticSpec{
		Service: loadgen.Fixed(time.Microsecond), ReqSize: 24, ReplySize: 8,
	}
	for i := 0; i < b.N; i++ {
		cfg := harness.RunConfig{
			Seed: 42, Warmup: 5 * time.Millisecond,
			Duration: 25 * time.Millisecond, Clients: 2,
		}
		var res harness.RunResult
		if traced {
			var o *obs.Obs
			res, o = harness.TracedPoint(harness.Hovercraft(3), wl, 300_000, cfg)
			if o.Completed() == 0 {
				b.Fatal("traced run recorded nothing")
			}
		} else {
			res = harness.RunPoint(harness.Hovercraft(3), wl, 300_000, cfg)
		}
		if res.Point.AchievedKRPS <= 0 {
			b.Fatal("no throughput")
		}
		b.ReportMetric(float64(res.Point.P99.Microseconds()), "p99us")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
