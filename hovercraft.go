// Package hovercraft makes deterministic request/response services
// fault-tolerant with no code changes, implementing the HovercRaft
// protocol (Kogias & Bugnion, EuroSys'20): Raft embedded directly in the
// R2P2 RPC layer, extended to separate request replication from ordering
// and to load-balance client replies and read-only execution across
// replicas — so adding nodes buys both resilience and performance.
//
// # Quick start
//
// Implement StateMachine (or use the bundled Redis-like store), start one
// Node per replica, and point a Client at the cluster:
//
//	sm := hovercraft.Func(func(cmd []byte, readOnly bool) []byte { ... })
//	node, _ := hovercraft.Start(hovercraft.Config{
//	    ID:    1,
//	    Peers: map[uint32]string{1: ":7001", 2: ":7002", 3: ":7003"},
//	}, sm)
//	defer node.Close()
//
//	client, _ := hovercraft.Dial([]string{"h1:7001", "h2:7002", "h3:7003"})
//	reply, _ := client.Call([]byte("INCR x"), false)
//
// Writes (readOnly=false) are totally ordered and executed on every
// replica; reads (readOnly=true) are totally ordered for linearizability
// but executed only by one replica — the designated replier — which
// answers the client directly.
//
// The deterministic discrete-event evaluation of the paper lives under
// internal/harness and is driven by cmd/hoverbench.
package hovercraft

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"hovercraft/internal/app"
	"hovercraft/internal/core"
	"hovercraft/internal/shard"
	"hovercraft/internal/transport"
)

// StateMachine is the application made fault-tolerant. Apply must be
// deterministic: given the same sequence of non-read-only commands, every
// replica must reach the same state. Apply is never called concurrently.
type StateMachine interface {
	// Apply executes one command and returns the reply payload.
	// readOnly commands must not mutate state.
	Apply(cmd []byte, readOnly bool) []byte
}

// Func adapts a function to the StateMachine interface.
type Func func(cmd []byte, readOnly bool) []byte

// Apply implements StateMachine.
func (f Func) Apply(cmd []byte, readOnly bool) []byte { return f(cmd, readOnly) }

// Protocol selects the replication protocol variant.
type Protocol uint8

const (
	// HovercRaft (default) replicates requests by client fan-out and
	// orders them with metadata-only AppendEntries; replies and
	// read-only execution are load balanced across replicas.
	HovercRaft Protocol = iota
	// VanillaRaft is classic Raft-over-RPC: all client traffic and
	// execution burden the leader. Provided as the paper's baseline.
	VanillaRaft
	// HovercRaftPP additionally offloads AppendEntries fan-out/fan-in
	// to an aggregator process (see cmd/hovernode -aggregator).
	HovercRaftPP
)

// Config configures one replica.
type Config struct {
	// ID is this node's identity; it must be a key of Peers.
	ID uint32
	// Peers maps node IDs to UDP addresses for the whole cluster.
	Peers map[uint32]string
	// Protocol defaults to HovercRaft.
	Protocol Protocol
	// Aggregator is the aggregator's UDP address (HovercRaftPP only).
	Aggregator string

	// TickInterval is the protocol timer quantum (default 1ms).
	TickInterval time.Duration
	// ElectionTicks and HeartbeatTicks are expressed in ticks
	// (defaults 150 and 20).
	ElectionTicks  int
	HeartbeatTicks int
	// Bound is the bounded-queue depth B for reply load balancing
	// (default 128). Smaller B loses fewer replies when a replica
	// dies; larger B load balances more aggressively.
	Bound int
	// DisableReplyLB pins all replies to the leader.
	DisableReplyLB bool

	// Shards runs this many independent Raft groups on the node (default
	// 1), partitioning the keyspace by consistent hashing so aggregate
	// write throughput is no longer bound by a single leader. Shard s
	// listens on each peer's port+s; use StartSharded to supply per-shard
	// state machines and DialSharded for a key-routing client.
	Shards int

	// Sockets shards each group's ingress across this many SO_REUSEPORT
	// sockets with independent batch read loops (default 1). Only Linux
	// binds more than one; elsewhere the value is ignored.
	Sockets int

	// ReadLease enables the linearizable read fast path: Client.CallRead
	// requests are served from any replica's local state under a
	// heartbeat-ratified leader lease, without entering the log. Off by
	// default (replicas NACK lin-reads; use Call(cmd, true) for ordered
	// reads).
	ReadLease bool
	// ReadStalenessBudget throttles each follower to one read-index
	// fetch per window, amortizing the leader round across every read
	// arriving within it (0 = fetch as fast as batching allows). Bounds
	// added queueing only — reads stay strictly linearizable.
	ReadStalenessBudget time.Duration
}

// Node is a running replica: one server per shard group (a single
// server unless Config.Shards > 1).
type Node struct {
	srv    *transport.Server   // shard 0 (the only shard when unsharded)
	shards []*transport.Server // all shards, indexed by group
}

type smService struct{ sm StateMachine }

func (s smService) Execute(payload []byte, readOnly bool) []byte {
	return s.sm.Apply(payload, readOnly)
}

var _ app.Service = smService{}

// ShardFactory builds one state machine per shard group. Every node of a
// sharded deployment must build equivalent machines for the same shard.
type ShardFactory interface {
	NewShard(shard int) StateMachine
}

// FactoryFunc adapts a function to the ShardFactory interface.
type FactoryFunc func(shard int) StateMachine

// NewShard implements ShardFactory.
func (f FactoryFunc) NewShard(shard int) StateMachine { return f(shard) }

// Start launches a replica serving sm. For sharded deployments
// (Config.Shards > 1) use StartSharded, which builds one state machine
// per group.
func Start(cfg Config, sm StateMachine) (*Node, error) {
	if cfg.Shards > 1 {
		return nil, errors.New("hovercraft: Config.Shards > 1 requires StartSharded")
	}
	return StartSharded(cfg, FactoryFunc(func(int) StateMachine { return sm }))
}

// StartSharded launches a replica running Config.Shards independent Raft
// groups (default 1), each serving its own state machine from the
// factory. Shard s binds every peer's address at port+s, so groups demux
// by port; keys are assigned to groups by the consistent-hash map that
// DialSharded clients share.
func StartSharded(cfg Config, f ShardFactory) (*Node, error) {
	mode := core.ModeHovercraft
	switch cfg.Protocol {
	case VanillaRaft:
		mode = core.ModeVanilla
	case HovercRaftPP:
		mode = core.ModeHovercraftPP
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > shard.MaxGroups {
		return nil, fmt.Errorf("hovercraft: Shards %d exceeds %d", shards, shard.MaxGroups)
	}
	n := &Node{}
	for s := 0; s < shards; s++ {
		peers, err := shardPeers(cfg.Peers, s)
		if err != nil {
			n.Close()
			return nil, err
		}
		agg := cfg.Aggregator
		if agg != "" && s > 0 {
			if agg, err = offsetPort(agg, s); err != nil {
				n.Close()
				return nil, err
			}
		}
		srv, err := transport.NewServer(transport.ServerConfig{
			ID:             cfg.ID,
			Peers:          peers,
			Mode:           mode,
			Aggregator:     agg,
			TickInterval:   cfg.TickInterval,
			ElectionTicks:  cfg.ElectionTicks,
			HeartbeatTicks: cfg.HeartbeatTicks,
			Bound:          cfg.Bound,
			DisableReplyLB: cfg.DisableReplyLB,
			Sockets:        cfg.Sockets,

			ReadLease:           cfg.ReadLease,
			ReadStalenessBudget: cfg.ReadStalenessBudget,
		}, smService{sm: f.NewShard(s)})
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("hovercraft: shard %d: %w", s, err)
		}
		n.shards = append(n.shards, srv)
	}
	n.srv = n.shards[0]
	return n, nil
}

// shardPeers offsets every peer port by the shard index.
func shardPeers(peers map[uint32]string, s int) (map[uint32]string, error) {
	if s == 0 {
		return peers, nil
	}
	out := make(map[uint32]string, len(peers))
	for id, addr := range peers {
		a, err := offsetPort(addr, s)
		if err != nil {
			return nil, err
		}
		out[id] = a
	}
	return out, nil
}

func offsetPort(addr string, delta int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("hovercraft: address %q: %w", addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("hovercraft: address %q: %w", addr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+delta)), nil
}

// Shards returns the number of shard groups this node serves.
func (n *Node) Shards() int { return len(n.shards) }

// IsLeader reports whether this replica currently leads the cluster
// (shard 0 in sharded deployments).
func (n *Node) IsLeader() bool { return n.srv.IsLeader() }

// IsShardLeader reports whether this replica leads shard s.
func (n *Node) IsShardLeader(s int) bool { return n.shards[s].IsLeader() }

// Status describes the replica's consensus state.
type Status struct {
	Leader  uint32
	Term    uint64
	Commit  uint64
	Applied uint64
}

// Status returns a snapshot of the replica's consensus state
// (shard 0 in sharded deployments).
func (n *Node) Status() Status { return n.ShardStatus(0) }

// ShardStatus returns a snapshot of shard s's consensus state.
func (n *Node) ShardStatus(s int) Status {
	st := n.shards[s].Status()
	return Status{
		Leader:  uint32(st.Lead),
		Term:    st.Term,
		Commit:  st.Commit,
		Applied: st.Applied,
	}
}

// Campaign asks this replica to run for leader immediately (shard 0 in
// sharded deployments). Useful to bootstrap a fresh cluster
// deterministically; otherwise the randomized election timeout elects
// someone within a few election periods.
func (n *Node) Campaign() { n.srv.Campaign() }

// CampaignShard asks this replica to run for leader of shard s. Sharded
// bootstraps should spread campaigns across nodes (node ids[s%N]
// campaigning shard s) so leaderships — and write load — land evenly.
func (n *Node) CampaignShard(s int) { n.shards[s].Campaign() }

// Close shuts the replica down.
func (n *Node) Close() error {
	var first error
	for _, srv := range n.shards {
		if srv == nil {
			continue
		}
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Client issues requests against a HovercRaft cluster.
type Client = transport.Client

// ClientOptions tune a client; the zero value works.
type ClientOptions = transport.ClientOptions

// Dial connects a client to the cluster's node addresses.
func Dial(peers []string, opts ...ClientOptions) (*Client, error) {
	return transport.Dial(peers, opts...)
}

// ShardedClient routes requests across the shard groups of a sharded
// deployment by consistent-hashing the caller-supplied key, so every
// client agrees with every other on key placement.
type ShardedClient struct {
	m       *shard.Map
	clients []*Client // one per shard, at port-offset addresses
}

// DialSharded connects a key-routing client to a cluster started with
// Config.Shards = shards. peers holds the base (shard 0) addresses;
// shard s is reached at port+s on each peer.
func DialSharded(peers []string, shards int, opts ...ClientOptions) (*ShardedClient, error) {
	if shards < 1 || shards > shard.MaxGroups {
		return nil, fmt.Errorf("hovercraft: shard count %d outside [1, %d]", shards, shard.MaxGroups)
	}
	sc := &ShardedClient{m: shard.NewMap(shards)}
	for s := 0; s < shards; s++ {
		addrs := make([]string, len(peers))
		for i, p := range peers {
			a, err := offsetPort(p, s)
			if err != nil {
				sc.Close()
				return nil, err
			}
			addrs[i] = a
		}
		cl, err := transport.Dial(addrs, opts...)
		if err != nil {
			sc.Close()
			return nil, fmt.Errorf("hovercraft: shard %d: %w", s, err)
		}
		sc.clients = append(sc.clients, cl)
	}
	return sc, nil
}

// CallKey issues cmd against the shard group owning key and returns the
// reply. Commands touching the same key always reach the same group, so
// per-key operations stay linearizable; cross-key commands must be
// confined to one shard by the application.
func (c *ShardedClient) CallKey(key []byte, cmd []byte, readOnly bool) ([]byte, error) {
	return c.clients[c.m.GroupFor(key)].Call(cmd, readOnly)
}

// CallKeyRead issues a linearizable read against the shard group owning
// key through the leased read-index fast path: served by one rotating
// replica of that group from local state, never entering the log.
// Requires the cluster to run with Config.ReadLease.
func (c *ShardedClient) CallKeyRead(key []byte, cmd []byte) ([]byte, error) {
	return c.clients[c.m.GroupFor(key)].CallRead(cmd)
}

// ShardFor reports which shard group owns key.
func (c *ShardedClient) ShardFor(key []byte) int { return int(c.m.GroupFor(key)) }

// Shard returns the underlying client for one shard group, for commands
// that must target a specific group regardless of key.
func (c *ShardedClient) Shard(s int) *Client { return c.clients[s] }

// Shards returns the number of shard groups the client routes across.
func (c *ShardedClient) Shards() int { return len(c.clients) }

// Close releases all per-shard clients.
func (c *ShardedClient) Close() error {
	var first error
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
