// Package hovercraft makes deterministic request/response services
// fault-tolerant with no code changes, implementing the HovercRaft
// protocol (Kogias & Bugnion, EuroSys'20): Raft embedded directly in the
// R2P2 RPC layer, extended to separate request replication from ordering
// and to load-balance client replies and read-only execution across
// replicas — so adding nodes buys both resilience and performance.
//
// # Quick start
//
// Implement StateMachine (or use the bundled Redis-like store), start one
// Node per replica, and point a Client at the cluster:
//
//	sm := hovercraft.Func(func(cmd []byte, readOnly bool) []byte { ... })
//	node, _ := hovercraft.Start(hovercraft.Config{
//	    ID:    1,
//	    Peers: map[uint32]string{1: ":7001", 2: ":7002", 3: ":7003"},
//	}, sm)
//	defer node.Close()
//
//	client, _ := hovercraft.Dial([]string{"h1:7001", "h2:7002", "h3:7003"})
//	reply, _ := client.Call([]byte("INCR x"), false)
//
// Writes (readOnly=false) are totally ordered and executed on every
// replica; reads (readOnly=true) are totally ordered for linearizability
// but executed only by one replica — the designated replier — which
// answers the client directly.
//
// The deterministic discrete-event evaluation of the paper lives under
// internal/harness and is driven by cmd/hoverbench.
package hovercraft

import (
	"time"

	"hovercraft/internal/app"
	"hovercraft/internal/core"
	"hovercraft/internal/transport"
)

// StateMachine is the application made fault-tolerant. Apply must be
// deterministic: given the same sequence of non-read-only commands, every
// replica must reach the same state. Apply is never called concurrently.
type StateMachine interface {
	// Apply executes one command and returns the reply payload.
	// readOnly commands must not mutate state.
	Apply(cmd []byte, readOnly bool) []byte
}

// Func adapts a function to the StateMachine interface.
type Func func(cmd []byte, readOnly bool) []byte

// Apply implements StateMachine.
func (f Func) Apply(cmd []byte, readOnly bool) []byte { return f(cmd, readOnly) }

// Protocol selects the replication protocol variant.
type Protocol uint8

const (
	// HovercRaft (default) replicates requests by client fan-out and
	// orders them with metadata-only AppendEntries; replies and
	// read-only execution are load balanced across replicas.
	HovercRaft Protocol = iota
	// VanillaRaft is classic Raft-over-RPC: all client traffic and
	// execution burden the leader. Provided as the paper's baseline.
	VanillaRaft
	// HovercRaftPP additionally offloads AppendEntries fan-out/fan-in
	// to an aggregator process (see cmd/hovernode -aggregator).
	HovercRaftPP
)

// Config configures one replica.
type Config struct {
	// ID is this node's identity; it must be a key of Peers.
	ID uint32
	// Peers maps node IDs to UDP addresses for the whole cluster.
	Peers map[uint32]string
	// Protocol defaults to HovercRaft.
	Protocol Protocol
	// Aggregator is the aggregator's UDP address (HovercRaftPP only).
	Aggregator string

	// TickInterval is the protocol timer quantum (default 1ms).
	TickInterval time.Duration
	// ElectionTicks and HeartbeatTicks are expressed in ticks
	// (defaults 150 and 20).
	ElectionTicks  int
	HeartbeatTicks int
	// Bound is the bounded-queue depth B for reply load balancing
	// (default 128). Smaller B loses fewer replies when a replica
	// dies; larger B load balances more aggressively.
	Bound int
	// DisableReplyLB pins all replies to the leader.
	DisableReplyLB bool
}

// Node is a running replica.
type Node struct {
	srv *transport.Server
}

type smService struct{ sm StateMachine }

func (s smService) Execute(payload []byte, readOnly bool) []byte {
	return s.sm.Apply(payload, readOnly)
}

var _ app.Service = smService{}

// Start launches a replica serving sm.
func Start(cfg Config, sm StateMachine) (*Node, error) {
	mode := core.ModeHovercraft
	switch cfg.Protocol {
	case VanillaRaft:
		mode = core.ModeVanilla
	case HovercRaftPP:
		mode = core.ModeHovercraftPP
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		ID:             cfg.ID,
		Peers:          cfg.Peers,
		Mode:           mode,
		Aggregator:     cfg.Aggregator,
		TickInterval:   cfg.TickInterval,
		ElectionTicks:  cfg.ElectionTicks,
		HeartbeatTicks: cfg.HeartbeatTicks,
		Bound:          cfg.Bound,
		DisableReplyLB: cfg.DisableReplyLB,
	}, smService{sm: sm})
	if err != nil {
		return nil, err
	}
	return &Node{srv: srv}, nil
}

// IsLeader reports whether this replica currently leads the cluster.
func (n *Node) IsLeader() bool { return n.srv.IsLeader() }

// Status describes the replica's consensus state.
type Status struct {
	Leader  uint32
	Term    uint64
	Commit  uint64
	Applied uint64
}

// Status returns a snapshot of the replica's consensus state.
func (n *Node) Status() Status {
	st := n.srv.Status()
	return Status{
		Leader:  uint32(st.Lead),
		Term:    st.Term,
		Commit:  st.Commit,
		Applied: st.Applied,
	}
}

// Campaign asks this replica to run for leader immediately. Useful to
// bootstrap a fresh cluster deterministically; otherwise the randomized
// election timeout elects someone within a few election periods.
func (n *Node) Campaign() { n.srv.Campaign() }

// Close shuts the replica down.
func (n *Node) Close() error { return n.srv.Close() }

// Client issues requests against a HovercRaft cluster.
type Client = transport.Client

// ClientOptions tune a client; the zero value works.
type ClientOptions = transport.ClientOptions

// Dial connects a client to the cluster's node addresses.
func Dial(peers []string, opts ...ClientOptions) (*Client, error) {
	return transport.Dial(peers, opts...)
}
