// Hot-path allocation benchmarks: the Fig. 7 steady-state message path
// measured in allocations, not latency. The simulator's virtual time is
// deterministic, so what these benchmarks expose is the *real* per-packet
// work of the protocol stack — codec, engine, fabric — which caps both
// the real-UDP runtime and the wall-clock speed of every simnet
// experiment. `make bench` snapshots them into BENCH_hotpath.json and CI
// fails on allocation regressions (cmd/benchcheck).
package hovercraft_test

import (
	"runtime"
	"testing"
	"time"

	"hovercraft/internal/loadgen"
	"hovercraft/internal/obs"
	"hovercraft/internal/raft"
	"hovercraft/internal/simcluster"
	"hovercraft/internal/simnet"
)

// hotpathCluster assembles the Fig. 7 steady-state setup: HovercRaft on
// three nodes, reply load balancing disabled (§7.1), one open-loop client
// at a rate well under saturation.
func hotpathCluster(rate float64, withTelemetry bool) (*simcluster.Cluster, *loadgen.Client) {
	opts := simcluster.Options{
		Setup:          simcluster.SetupHovercraft,
		Nodes:          3,
		Seed:           42,
		DisableReplyLB: true,
	}
	if withTelemetry {
		opts.NewTelemetry = func(raft.NodeID) *obs.Telemetry {
			return obs.NewTelemetry(nil, 0, 0)
		}
	}
	cl := simcluster.New(opts)
	wl := &loadgen.Synthetic{
		ServiceTime: loadgen.Fixed(time.Microsecond),
		ReqSize:     24,
		ReplySize:   8,
	}
	c := loadgen.NewClient(cl.Net, "client", simnet.DefaultHostConfig(), loadgen.ClientConfig{
		Rate:     rate,
		Warmup:   0,
		Duration: time.Hour, // effectively unbounded; the benchmark stops the sim
		Timeout:  10 * time.Millisecond,
		Workload: wl,
		Target:   cl.ServiceAddr,
		Port:     7001,
	})
	cl.Start()
	c.Start()
	return cl, c
}

// BenchmarkHotpathFig7SteadyState advances a warmed-up Fig. 7 cluster in
// 1ms virtual-time slices. allocs/op is per slice; the headline metric is
// allocs/req — heap allocations per completed client request across the
// whole path (client encode, fabric delivery, reassembly, consensus
// encode/decode, apply, reply).
func BenchmarkHotpathFig7SteadyState(b *testing.B) {
	benchFig7(b, false)
}

// BenchmarkHotpathFig7Telemetry is the same steady-state run with the
// per-stage queue-delay telemetry attached to every node — the
// "always-on" configuration. Gated at the same allocs/req as the bare
// run: instrumentation must not put allocations back on the hot path.
func BenchmarkHotpathFig7Telemetry(b *testing.B) {
	benchFig7(b, true)
}

func benchFig7(b *testing.B, withTelemetry bool) {
	cl, c := hotpathCluster(200_000, withTelemetry)
	until := 10 * time.Millisecond
	cl.Run(until) // warmup: leader elected, pipeline streaming

	var before, after runtime.MemStats
	completed0 := c.Completed
	b.ReportAllocs()
	b.ResetTimer()
	runtime.ReadMemStats(&before)
	for i := 0; i < b.N; i++ {
		until += time.Millisecond
		cl.Run(until)
	}
	runtime.ReadMemStats(&after)
	b.StopTimer()
	reqs := c.Completed - completed0
	if reqs == 0 {
		b.Fatal("steady-state window completed no requests")
	}
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(reqs), "allocs/req")
	b.ReportMetric(float64(reqs)/float64(b.N), "req/op")
	if withTelemetry {
		// Telemetry actually ran: every node dispatched through the
		// instrumented path.
		for _, n := range cl.Nodes {
			if n.Tel.Window(obs.QEngine).Count == 0 && n.Tel.Hist(obs.QEngine).TotalCount() == 0 {
				b.Fatal("telemetry attached but recorded nothing")
			}
		}
	}
}
