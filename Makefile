# Hot-path benchmark harness. `make bench` re-measures the message hot
# path and snapshots the allocation numbers into BENCH_hotpath.json
# (commit the result); `make bench-check` is the CI gate that fails on
# allocation regressions against that committed baseline.

GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# The gated hot-path benchmarks: the Fig. 7 steady-state end-to-end run
# (root package, bare and with telemetry attached), the r2p2 codec
# paths, the wire buffer pool, and the telemetry record/rotate hooks.
# The loopback UDP benchmark is deliberately excluded — it needs socket
# bind permissions and reports throughput, not allocations.
BENCH_PATTERN := Hotpath|HeaderMarshal|Fragment|PooledFrag|IngestSingle|Reassemble|GetRelease
BENCH_PKGS := . ./internal/r2p2 ./internal/wire ./internal/obs

# The gated data-plane benchmarks: the batch-size × socket-count matrix
# (dg/sendmmsg amortization), the group-commit durable-throughput run
# (fsyncs/req), and the per-core engine-shard scaling matrix
# (dgps_x4_over_x1: 4-core over 1-core aggregate throughput). The gated
# units are ratios, which hold across machines even though dg/s does
# not — but the scaling ratio saturates at the host's core count, so
# regenerate the baseline on a >=4-CPU machine to arm the scaling gate.
DATAPLANE_PATTERN := Dataplane|LoopbackDurableThroughput|LoopCores
DATAPLANE_PKG := ./internal/transport
DATAPLANE_NOTE := Data-plane baseline: sendmmsg amortization, WAL group-commit \
fsync ratios, and engine-shard core scaling; regenerate with 'make bench' on a \
machine with >=4 CPUs. CI gates dg/sendmmsg and dgps_x4_over_x1 (floors) and \
fsyncs/req (ceiling) against this file (cmd/benchcheck).

# The gated overload-control benchmarks run in simulator virtual time,
# so the gated units (goodput as a fraction of measured capacity, the
# admitted-work p99, NACKs per request below capacity) are exact across
# machines. -benchtime=1x: one deterministic run is the measurement.
OVERLOAD_PATTERN := OverloadAdaptive2x|OverloadHalfLoad
OVERLOAD_PKG := ./internal/harness
OVERLOAD_NOTE := Overload-control baseline: adaptive admission goodput at 2x offered \
load (floor, as a fraction of measured 1x capacity), admitted-work p99 (ceiling, vs \
the 500us SLO), and NACKs/request at half load (ceiling). Deterministic virtual-time \
runs; regenerate with 'make bench'. Gated by cmd/benchcheck.

# The gated read-scale benchmarks also run in simulator virtual time:
# leased-read capacity under the SLO on YCSB-C at N=3 (floor), its
# ratio over log-ordered reads (floor), the write-class p99 with
# lin-reads flowing around the log (ceiling), and the stale-read
# counter (ceiling, zero slack — linearizability invariant).
READSCALE_PATTERN := ReadscaleYCSBC|ReadscaleMixedB
READSCALE_PKG := ./internal/harness
READSCALE_NOTE := Read-scale baseline: leased read-index capacity under the 500us \
SLO on YCSB-C at N=3 (floor), its ratio over log-ordered reads (floor), write-class \
p99 alongside lin-reads (ceiling), and the stale-read invariant (ceiling, zero \
slack). Deterministic virtual-time runs; regenerate with 'make bench'. Gated by \
cmd/benchcheck.

.PHONY: all build test race bench bench-check bench-dataplane bench-dataplane-check \
	bench-overload bench-overload-check bench-readscale bench-readscale-check \
	smoke-overload smoke-readscale

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench: bench-dataplane bench-overload bench-readscale
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) | tee bench.out
	$(GO) run ./cmd/benchcheck -in bench.out -baseline BENCH_hotpath.json -update
	@rm -f bench.out

bench-check: bench-dataplane-check bench-overload-check bench-readscale-check
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=100x $(BENCH_PKGS) | tee bench.out
	$(GO) run ./cmd/benchcheck -in bench.out -baseline BENCH_hotpath.json
	@rm -f bench.out

bench-dataplane:
	$(GO) test -run '^$$' -bench '$(DATAPLANE_PATTERN)' -benchmem -benchtime=20000x $(DATAPLANE_PKG) | tee bench-dataplane.out
	$(GO) run ./cmd/benchcheck -in bench-dataplane.out -baseline BENCH_dataplane.json -update -note "$(DATAPLANE_NOTE)"
	@rm -f bench-dataplane.out

bench-dataplane-check:
	$(GO) test -run '^$$' -bench '$(DATAPLANE_PATTERN)' -benchmem -benchtime=20000x $(DATAPLANE_PKG) | tee bench-dataplane.out
	$(GO) run ./cmd/benchcheck -in bench-dataplane.out -baseline BENCH_dataplane.json
	@rm -f bench-dataplane.out

bench-overload:
	$(GO) test -run '^$$' -bench '$(OVERLOAD_PATTERN)' -benchtime=1x $(OVERLOAD_PKG) | tee bench-overload.out
	$(GO) run ./cmd/benchcheck -in bench-overload.out -baseline BENCH_overload.json -update -note "$(OVERLOAD_NOTE)"
	@rm -f bench-overload.out

bench-overload-check:
	$(GO) test -run '^$$' -bench '$(OVERLOAD_PATTERN)' -benchtime=1x $(OVERLOAD_PKG) | tee bench-overload.out
	$(GO) run ./cmd/benchcheck -in bench-overload.out -baseline BENCH_overload.json
	@rm -f bench-overload.out

bench-readscale:
	$(GO) test -run '^$$' -bench '$(READSCALE_PATTERN)' -benchtime=1x $(READSCALE_PKG) | tee bench-readscale.out
	$(GO) run ./cmd/benchcheck -in bench-readscale.out -baseline BENCH_readscale.json -update -note "$(READSCALE_NOTE)"
	@rm -f bench-readscale.out

bench-readscale-check:
	$(GO) test -run '^$$' -bench '$(READSCALE_PATTERN)' -benchtime=1x $(READSCALE_PKG) | tee bench-readscale.out
	$(GO) run ./cmd/benchcheck -in bench-readscale.out -baseline BENCH_readscale.json
	@rm -f bench-readscale.out

smoke-overload:
	bash scripts/overload_smoke.sh

smoke-readscale:
	bash scripts/readscale_smoke.sh
