# Hot-path benchmark harness. `make bench` re-measures the message hot
# path and snapshots the allocation numbers into BENCH_hotpath.json
# (commit the result); `make bench-check` is the CI gate that fails on
# allocation regressions against that committed baseline.

GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# The gated hot-path benchmarks: the Fig. 7 steady-state end-to-end run
# (root package), the r2p2 codec paths, and the wire buffer pool. The
# loopback UDP benchmark is deliberately excluded — it needs socket
# bind permissions and reports throughput, not allocations.
BENCH_PATTERN := Hotpath|HeaderMarshal|Fragment|PooledFrag|IngestSingle|Reassemble|GetRelease
BENCH_PKGS := . ./internal/r2p2 ./internal/wire

.PHONY: all build test race bench bench-check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) | tee bench.out
	$(GO) run ./cmd/benchcheck -in bench.out -baseline BENCH_hotpath.json -update
	@rm -f bench.out

bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=100x $(BENCH_PKGS) | tee bench.out
	$(GO) run ./cmd/benchcheck -in bench.out -baseline BENCH_hotpath.json
	@rm -f bench.out
