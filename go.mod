module hovercraft

go 1.22
