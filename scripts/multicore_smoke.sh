#!/usr/bin/env bash
# Multi-core data-plane smoke test: boot a real three-node loopback
# cluster with four per-core loops per node (-cores 4), push traffic
# through it, then assert that
#   1. the cluster serves correctly with the sharded engine plane,
#   2. every node's /metrics exposes the per-core loop families
#      (core-labeled ingress and handoff counters, net_cores gauge), and
#   3. somewhere in the fleet a datagram actually crossed cores through
#      the mailbox path (the kernel's reuseport hash vs core ownership),
#      with handoff drop accounting at zero.
# CI runs this against the binaries at HEAD; it needs only loopback.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT=${BASE_PORT:-7471}
DEBUG_PORT=${DEBUG_PORT:-9471}
WORK=$(mktemp -d)
declare -a PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK" ./cmd/hovernode ./cmd/hoverkv

PEERS="1=127.0.0.1:$BASE_PORT,2=127.0.0.1:$((BASE_PORT+1)),3=127.0.0.1:$((BASE_PORT+2))"
DATA_ADDRS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT+1)),127.0.0.1:$((BASE_PORT+2))"
DEBUG_ADDRS=()
echo "== start 3 hovernodes with -cores 4 ($PEERS)"
for id in 1 2 3; do
    dbg="127.0.0.1:$((DEBUG_PORT+id-1))"
    DEBUG_ADDRS+=("$dbg")
    args=(-id "$id" -peers "$PEERS" -cores 4 -debug-addr "$dbg")
    [ "$id" = 1 ] && args+=(-bootstrap)
    "$WORK/hovernode" "${args[@]}" >"$WORK/node$id.log" 2>&1 &
    PIDS+=($!)
done

echo "== wait for debug endpoints"
for dbg in "${DEBUG_ADDRS[@]}"; do
    for _ in $(seq 1 50); do
        curl -sf "http://$dbg/metrics" >/dev/null 2>&1 && break
        sleep 0.1
    done
done

fail() { echo "FAIL: $1" >&2; exit 1; }

echo "== drive traffic"
"$WORK/hoverkv" -peers "$DATA_ADDRS" set smoke ok
[ "$("$WORK/hoverkv" -peers "$DATA_ADDRS" get smoke)" = "ok" ] ||
    fail "get after set did not round-trip through the 4-core cluster"
"$WORK/hoverkv" -peers "$DATA_ADDRS" bench -n 500 -keys 50

echo "== check per-core families on every node"
total_handoff=0
total_drops=0
for dbg in "${DEBUG_ADDRS[@]}"; do
    out=$(curl -sf "http://$dbg/metrics") || fail "no /metrics on $dbg"
    echo "$out" | grep -q 'hovercraft_net_cores{shard="0"} 4' ||
        fail "$dbg: net_cores gauge does not report 4 loops"
    # Core 0 owns the engine (hovernode pins shard s to core s%cores);
    # the others forward. Each role's families must be present even for
    # cores the reuseport hash never picked.
    echo "$out" | grep -q 'hovercraft_ingress_datagrams_total{core="0",shard="0"}' ||
        fail "$dbg: missing owner-core ingress counter"
    for core in 1 2 3; do
        echo "$out" | grep -q "hovercraft_handoff_out_total{core=\"$core\",shard=\"0\"}" ||
            fail "$dbg: missing core=$core handoff counter"
    done
    handoff=$(echo "$out" | awk '/^hovercraft_handoff_out_total\{/ {s+=$2} END {print s+0}')
    drops=$(echo "$out" | awk '/^hovercraft_handoff_drops_total\{/ {s+=$2} END {print s+0}')
    total_handoff=$((total_handoff + handoff))
    total_drops=$((total_drops + drops))
done
echo "ok: core-labeled loop families exposed on all 3 nodes (fleet handoff=$total_handoff)"

# With >=3 remote endpoints hashed over 4 sockets on each of 3 nodes,
# the odds that every flow landed on its owner core are negligible.
[ "$total_handoff" -gt 0 ] ||
    fail "no datagram ever crossed cores: mailbox handoff path unexercised"
[ "$total_drops" -eq 0 ] ||
    fail "$total_drops handoff drops at smoke-test load"
echo "ok: cross-core mailbox handoff exercised with zero drops"

echo "PASS: multicore smoke"
