#!/usr/bin/env bash
# Overload-control smoke test: boot a real three-node loopback cluster
# with adaptive admission enabled and a deliberately small window
# ceiling, then hammer it with far more concurrent closed-loop writers
# than the window admits. Asserts that
#   1. the cluster sheds load (admission NACKs observed on /metrics)
#      instead of queueing without bound,
#   2. useful goodput stays nonzero and the admitted-work p99 stays
#      bounded while overloaded (graceful degradation, not collapse),
#   3. the admission controller's state is exported on /metrics and
#      aggregated by hovertop.
# CI runs this against the binaries at HEAD; it needs only loopback.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT=${BASE_PORT:-7461}
DEBUG_PORT=${DEBUG_PORT:-9461}
WORK=$(mktemp -d)
declare -a PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK" ./cmd/hovernode ./cmd/hoverkv ./cmd/hovertop

PEERS="1=127.0.0.1:$BASE_PORT,2=127.0.0.1:$((BASE_PORT+1)),3=127.0.0.1:$((BASE_PORT+2))"
DATA_ADDRS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT+1)),127.0.0.1:$((BASE_PORT+2))"
DEBUG_ADDRS=()
echo "== start 3 hovernodes with adaptive admission ($PEERS)"
for id in 1 2 3; do
    dbg="127.0.0.1:$((DEBUG_PORT+id-1))"
    DEBUG_ADDRS+=("$dbg")
    # A small window ceiling makes 2x overload cheap to provoke: the
    # flood below keeps ~2x that many requests in flight, so the
    # middlebox must shed the excess with hinted NACKs regardless of
    # how fast the host machine is.
    args=(-id "$id" -peers "$PEERS" -debug-addr "$dbg" -sockbuf 8388608
          -admission -admission-limit 64 -telemetry-epoch 10ms)
    [ "$id" = 1 ] && args+=(-bootstrap)
    "$WORK/hovernode" "${args[@]}" >"$WORK/node$id.log" 2>&1 &
    PIDS+=($!)
done

echo "== wait for debug endpoints"
for dbg in "${DEBUG_ADDRS[@]}"; do
    for _ in $(seq 1 50); do
        curl -sf "http://$dbg/metrics" >/dev/null 2>&1 && break
        sleep 0.1
    done
done

fail() { echo "FAIL: $1" >&2; exit 1; }

echo "== sanity write"
"$WORK/hoverkv" -peers "$DATA_ADDRS" set smoke ok

echo "== flood at ~2x the admit window"
out=$("$WORK/hoverkv" -peers "$DATA_ADDRS" flood -c 128 -duration 3s -keys 64) ||
    fail "flood completed zero operations"
echo "$out"

goodput=$(echo "$out" | sed -n 's/.*goodput=\([0-9]*\) ops\/s.*/\1/p')
p99us=$(echo "$out" | sed -n 's/^admitted_p99_us=\([0-9]*\)$/\1/p')
[ -n "$goodput" ] && [ "$goodput" -gt 0 ] || fail "no goodput under overload (got '$goodput')"
# Generous real-time bound: collapse modes (retry storms, unbounded
# queueing) push the admitted tail into seconds; a healthy shed keeps
# it within the client's single-attempt timeout.
[ -n "$p99us" ] && [ "$p99us" -lt 250000 ] ||
    fail "admitted p99 unbounded under overload (${p99us:-?}us)"
echo "ok: goodput=$goodput ops/s, admitted p99=${p99us}us under overload"

echo "== check admission metrics on every node"
nacked_total=0
for dbg in "${DEBUG_ADDRS[@]}"; do
    out=$(curl -sf "http://$dbg/metrics") || fail "no /metrics on $dbg"
    echo "$out" | grep -q 'hovercraft_admission_window{shard="0"}' ||
        fail "$dbg: missing admission window gauge"
    echo "$out" | grep -q 'hovercraft_admission_retry_after_ns{shard="0"}' ||
        fail "$dbg: missing retry-after hint gauge"
    echo "$out" | grep -q 'hovercraft_admission_nacked_total{shard="0"}' ||
        fail "$dbg: missing admission NACK counter"
    n=$(echo "$out" | sed -n 's/^hovercraft_admission_nacked_total{shard="0"} \([0-9]*\).*/\1/p')
    nacked_total=$((nacked_total + ${n:-0}))
done
[ "$nacked_total" -gt 0 ] || fail "no admission NACKs anywhere: flood never overloaded the window"
echo "ok: admission metrics exposed, fleet shed $nacked_total requests"

echo "== hovertop aggregates admission state"
TARGETS=$(IFS=,; echo "${DEBUG_ADDRS[*]}")
# Capture, then grep: piping into `grep -q` would close hovertop's
# stdout at the first match, and under pipefail the resulting EPIPE
# reads as a failure.
top=$("$WORK/hovertop" -targets "$TARGETS" -once) || fail "hovertop -once failed"
echo "$top" | grep -q 'admission  window=' ||
    fail "hovertop did not render the admission line"
echo "ok: hovertop shows the admission controller"

echo "PASS: overload smoke"
