#!/usr/bin/env bash
# Read-scale smoke test: boot a real three-node loopback cluster with
# the leased read-index fast path enabled, drive a read-heavy YCSB-B
# mix with reads going out as LIN_READ point-to-point across rotating
# replicas, then assert on the fleet's /metrics that
#   1. reads completed and the read-path counters are exported,
#   2. more than half of the served reads were served by FOLLOWERS —
#      the scale-out claim: read load actually left the leader,
#   3. the stale-read invariant counter is exactly zero on every node —
#      no lease ever ratified a read against a stale index.
# CI runs this against the binaries at HEAD; it needs only loopback.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT=${BASE_PORT:-7481}
DEBUG_PORT=${DEBUG_PORT:-9481}
WORK=$(mktemp -d)
declare -a PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK" ./cmd/hovernode ./cmd/hoverkv

PEERS="1=127.0.0.1:$BASE_PORT,2=127.0.0.1:$((BASE_PORT+1)),3=127.0.0.1:$((BASE_PORT+2))"
DATA_ADDRS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT+1)),127.0.0.1:$((BASE_PORT+2))"
DEBUG_ADDRS=()
echo "== start 3 hovernodes with read leases ($PEERS)"
for id in 1 2 3; do
    dbg="127.0.0.1:$((DEBUG_PORT+id-1))"
    DEBUG_ADDRS+=("$dbg")
    # A small staleness budget exercises the fetch throttle: reads
    # arriving within one window share a single leader round.
    args=(-id "$id" -peers "$PEERS" -debug-addr "$dbg" -sockbuf 8388608
          -read-lease -read-staleness-budget 200us)
    [ "$id" = 1 ] && args+=(-bootstrap)
    "$WORK/hovernode" "${args[@]}" >"$WORK/node$id.log" 2>&1 &
    PIDS+=($!)
done

echo "== wait for debug endpoints"
for dbg in "${DEBUG_ADDRS[@]}"; do
    for _ in $(seq 1 50); do
        curl -sf "http://$dbg/metrics" >/dev/null 2>&1 && break
        sleep 0.1
    done
done

fail() { echo "FAIL: $1" >&2; exit 1; }

echo "== sanity write + leased read"
"$WORK/hoverkv" -peers "$DATA_ADDRS" set smoke ok

echo "== YCSB-B with LIN_READs spread across replicas"
out=$("$WORK/hoverkv" -peers "$DATA_ADDRS" readmix -c 16 -duration 3s -records 200 -mix B -lin) ||
    fail "readmix completed zero reads"
echo "$out"

reads=$(echo "$out" | sed -n 's/^reads=\([0-9]*\) .*/\1/p')
[ -n "$reads" ] && [ "$reads" -gt 0 ] || fail "no reads completed (got '$reads')"

# scrape sums one engine counter family across the fleet.
scrape() {
    local name=$1 total=0 n
    for dbg in "${DEBUG_ADDRS[@]}"; do
        n=$(curl -sf "http://$dbg/metrics" |
            sed -n "s/^hovercraft_engine_${name}_total{shard=\"0\"} \([0-9]*\).*/\1/p")
        total=$((total + ${n:-0}))
    done
    echo "$total"
}

echo "== check read-path counters on every node"
for dbg in "${DEBUG_ADDRS[@]}"; do
    # Capture, then grep: piping into `grep -q` would close curl's
    # stdout at the first match, and under pipefail the resulting
    # EPIPE reads as a failure.
    page=$(curl -sf "http://$dbg/metrics") || fail "no /metrics on $dbg"
    echo "$page" | grep -q 'hovercraft_engine_read_follower_served_total' ||
        fail "$dbg: read-path counters missing from /metrics"
done

rx=$(scrape rx_read)
leader=$(scrape read_leader_served)
follower=$(scrape read_follower_served)
stale=$(scrape read_stale_served)
served=$((leader + follower))
echo "fleet: rx_read=$rx leader_served=$leader follower_served=$follower stale_served=$stale"

[ "$served" -gt 0 ] || fail "no reads served through the lease path"
# The scale-out claim: with reads rotating over 3 replicas, at most one
# of which leads, followers must carry the majority of the read load.
[ $((follower * 2)) -gt "$served" ] ||
    fail "followers served $follower of $served reads (need >50%)"
# The linearizability invariant: no replica ever served a read whose
# applied index trailed its ratified read index.
[ "$stale" -eq 0 ] || fail "read_stale_served=$stale (must be 0)"

echo "PASS: readscale smoke (followers served $follower/$served reads, 0 stale)"
