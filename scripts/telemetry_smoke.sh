#!/usr/bin/env bash
# Telemetry-plane smoke test: boot a real three-node loopback cluster
# with debug endpoints, push traffic through it, then assert that
#   1. every node's /metrics serves per-stage queue-delay windows and
#      raft role gauges in Prometheus text format, and
#   2. hovertop -once -json aggregates the fleet into one cluster view
#      with a leader, all nodes up, and non-empty stage telemetry.
# CI runs this against the binaries at HEAD; it needs only loopback.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT=${BASE_PORT:-7451}
DEBUG_PORT=${DEBUG_PORT:-9451}
WORK=$(mktemp -d)
declare -a PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK" ./cmd/hovernode ./cmd/hoverkv ./cmd/hovertop

PEERS="1=127.0.0.1:$BASE_PORT,2=127.0.0.1:$((BASE_PORT+1)),3=127.0.0.1:$((BASE_PORT+2))"
DATA_ADDRS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT+1)),127.0.0.1:$((BASE_PORT+2))"
DEBUG_ADDRS=()
echo "== start 3 hovernodes ($PEERS)"
for id in 1 2 3; do
    dbg="127.0.0.1:$((DEBUG_PORT+id-1))"
    DEBUG_ADDRS+=("$dbg")
    args=(-id "$id" -peers "$PEERS" -debug-addr "$dbg" -wal "$WORK/wal$id" -fsync-batch 32 -fsync-delay 100us)
    [ "$id" = 1 ] && args+=(-bootstrap)
    "$WORK/hovernode" "${args[@]}" >"$WORK/node$id.log" 2>&1 &
    PIDS+=($!)
done

echo "== wait for debug endpoints"
for dbg in "${DEBUG_ADDRS[@]}"; do
    for _ in $(seq 1 50); do
        curl -sf "http://$dbg/metrics" >/dev/null 2>&1 && break
        sleep 0.1
    done
done

echo "== drive traffic"
"$WORK/hoverkv" -peers "$DATA_ADDRS" set smoke ok
"$WORK/hoverkv" -peers "$DATA_ADDRS" bench -n 500 -keys 50

fail() { echo "FAIL: $1" >&2; exit 1; }

echo "== check /metrics on every node"
for dbg in "${DEBUG_ADDRS[@]}"; do
    out=$(curl -sf "http://$dbg/metrics") || fail "no /metrics on $dbg"
    echo "$out" | grep -q '^# TYPE hovercraft_qdelay_window_p99_ns gauge' ||
        fail "$dbg: missing qdelay window TYPE line"
    echo "$out" | grep -q 'hovercraft_qdelay_window_p99_ns{shard="0",stage="ingress"}' ||
        fail "$dbg: missing ingress p99 series"
    echo "$out" | grep -q 'hovercraft_qdelay_slo_burn{shard="0",stage="wal_sync"}' ||
        fail "$dbg: missing wal_sync SLO burn series"
    echo "$out" | grep -q 'hovercraft_raft_is_leader{shard="0"}' ||
        fail "$dbg: missing raft role gauge"
    echo "$out" | grep -q 'hovercraft_wal_fsyncs_total{shard="0"}' ||
        fail "$dbg: missing WAL fsync counter"
done
echo "ok: per-stage queue-delay windows exposed on all 3 nodes"

echo "== hovertop -once -json over the fleet"
TARGETS=$(IFS=,; echo "${DEBUG_ADDRS[*]}")
snap=$("$WORK/hovertop" -targets "$TARGETS" -once -json) || fail "hovertop exited non-zero"
echo "$snap" >"$WORK/hovertop.json"
[ "$(echo "$snap" | grep -c '"up": true')" = 3 ] || fail "hovertop: not all 3 nodes up"
echo "$snap" | grep -q '"leader": "' || fail "hovertop: no leader in merged view"
echo "$snap" | grep -q '"stage": "raft_step"' || fail "hovertop: no raft_step stage row"
echo "$snap" | grep -q '"fsync_per_req"' || fail "hovertop: no fsync amortization field"
echo "$snap" | grep -q '"slo_burn"' || fail "hovertop: no SLO burn field"
echo "ok: hovertop aggregated 3 nodes into one cluster view"

echo "== hovertop dashboard render"
"$WORK/hovertop" -targets "$TARGETS" -once | grep -q '3/3 nodes up' ||
    fail "hovertop dashboard did not show the fleet"

echo "PASS: telemetry smoke"
